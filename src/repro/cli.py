"""Command-line interface.

    python -m repro check FILE.c [MORE.c ...] [--quals DEFS.qual] [--flow-sensitive]
    python -m repro prove DEFS.qual [MORE.qual ...] [--qualifier NAME] [--no-cache]
    python -m repro run FILE.c [--entry MAIN]
    python -m repro show-ir FILE.c
    python -m repro infer FILE.c [MORE.c ...] --qualifier NAME [--quals DEFS.qual]
    python -m repro cache stats|clear [--cache-dir DIR]
    python -m repro serve [--socket PATH] [--listen HOST:PORT]
                          [--workers N] [--status] [--stop]

``check``, ``prove`` and ``infer`` also take ``--server ADDR`` (or
``$REPRO_SERVE_ADDR`` / ``$REPRO_SERVE_SOCKET``; a unix-socket path or
``host:port``) to proxy the command to a running ``serve`` daemon —
warm state, function-granularity incremental re-checking, identical
output — falling back to in-process execution when nothing is
listening (see docs/serve.md).

Every command body is a thin adapter over :mod:`repro.api` — the
stable library facade — plus terminal formatting; programmatic users
should call the facade directly, never this module.

``check``, ``prove`` and ``infer`` are batch commands: they accept any
number of input files, and every file (and every proof obligation) runs
in an isolated unit-of-work so one bad input degrades to a structured
verdict instead of aborting the run.  Shared batch flags:

* ``--keep-going`` — continue past failing units (the default stops
  dispatching new units after the first ERROR-or-worse verdict);
* ``--jobs N`` — fan units out over a process pool with preemptive
  per-child deadlines;
* ``--unit-timeout S`` — wall-clock budget per unit;
* ``--format json`` — machine-readable per-unit report (the payload is
  ``repro.api.Report.to_dict()``, stamped with ``schema_version``);
* ``--format jsonl`` — streaming variant: one ``record: "unit"`` line
  per unit *as it settles*, then one ``record: "summary"`` line —
  consumers see progress live and an interrupted run still ends in a
  parseable stream (see docs/robustness.md);
* ``--inject-faults SPEC`` — deterministic chaos testing: seeded
  worker kills/stalls, dropped result pipes, cache corruption, slow
  provers (see ``repro.faults``; also via ``REPRO_FAULTS``).

``prove`` consults a persistent content-addressed proof cache (default
``.repro-cache/``; see docs/caching.md): settled obligations are
replayed instead of re-proved, so warm re-runs are near-instant.
``--no-cache`` disables it, ``--cache-dir`` relocates it.

Exit codes (documented contract, see docs/robustness.md): 0 clean,
1 qualifier warnings / unsound rules found, 2 input error or timeout,
3 an internal crash was survived.  Qualifier definition files use the
paper's rule language; ``--quals`` may be repeated — files compose in
order, later definitions overriding earlier ones of the same name —
and without it the standard library (pos/neg/nonzero/nonnull/tainted/
untainted/unique/unaliased) is loaded.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro import api, faults, obs
from repro.cache.store import DEFAULT_CACHE_DIR
from repro.cfront.lexer import LexError
from repro.cfront.parser import ParseError
from repro.cil.lower import LowerError
from repro.core.qualifiers.parser import QualParseError
from repro.harness import batch
from repro.semantics.csem import CRuntimeError


def _session(args) -> api.Session:
    return api.Session(
        quals=tuple(getattr(args, "quals", None) or ()),
        no_std=getattr(args, "no_std", False),
        trust_constants=getattr(args, "trust_constants", False),
    )


def _print_unit_header(path: str, many: bool) -> None:
    if many:
        print(f"== {path}")


def _maybe_note_interrupt(report: api.Report) -> None:
    if report.batch.interrupted:
        print(
            "interrupted: partial report (remaining units skipped)",
            file=sys.stderr,
        )


# ------------------------------------------------------- JSONL streaming


def _jsonl_unit_record(command: str, unit: dict) -> None:
    """One ``record: "unit"`` line, flushed immediately (shared by the
    in-process streamer and the ``--server`` proxy, which receives the
    same dicts over the wire)."""
    record = {
        "schema_version": api.SCHEMA_VERSION,
        "command": command,
        "record": "unit",
        **unit,
    }
    print(json.dumps(record), flush=True)


def _jsonl_unit_streamer(command: str):
    """``--format jsonl``: one compact schema-v1 record per unit, written
    (and flushed) the moment the unit settles — completion order, which
    under ``--jobs`` is not input order; consumers key on ``unit``."""

    def on_result(result: batch.UnitResult) -> None:
        _jsonl_unit_record(command, result.to_dict())

    return on_result


def _jsonl_summary(report: api.Report) -> None:
    """The stream's final line: the full report payload minus the
    per-unit records already emitted."""
    payload = report.to_dict()
    payload.pop("units", None)
    record = {
        "schema_version": payload.pop("schema_version"),
        "command": payload.pop("command"),
        "record": "summary",
        **payload,
    }
    print(json.dumps(record), flush=True)


# ------------------------------------------------------- daemon proxying


def _server_params(args, op: str) -> dict:
    """The serve-protocol ``params`` object equivalent to this parsed
    command line (see repro/serve/protocol.py)."""
    params = {
        "quals": list(getattr(args, "quals", None) or ()),
        "no_std": getattr(args, "no_std", False),
        "trust_constants": getattr(args, "trust_constants", False),
        "files": list(args.files),
        "keep_going": args.keep_going,
        "jobs": args.jobs,
        "unit_timeout": args.unit_timeout,
    }
    if op in ("check", "infer"):
        params["flow_sensitive"] = args.flow_sensitive
    if op == "infer":
        params["qualifier"] = args.qualifier
    if op == "prove":
        params.update(
            qualifier=args.qualifier,
            time_limit=args.time_limit,
            retries=args.retries,
            cache=args.cache,
            cache_dir=args.cache_dir,
            session=args.session,
            shard=args.shard,
            explain=args.explain,
        )
    return params


def _run_on_server(args, op: str) -> Optional[int]:
    """Proxy one batch command to the daemon at ``args.server``.

    Returns the exit code, or ``None`` to fall back to in-process
    execution (nothing listening on the socket).  Output is identical
    either way: the daemon's final payload is rebuilt into a
    :class:`repro.api.Report` and rendered by the same formatter the
    in-process path uses; ``--format jsonl`` unit records stream as
    the daemon emits them."""
    from repro.serve import client as serve_client

    try:
        client = serve_client.connect(args.server)
    except OSError:
        print(
            f"note: no server at {args.server}; running in-process",
            file=sys.stderr,
        )
        return None
    on_unit = (
        (lambda unit: _jsonl_unit_record(op, unit))
        if args.format == "jsonl"
        else None
    )
    try:
        final = client.request(op, _server_params(args, op), on_unit=on_unit)
    except serve_client.ServeError as exc:
        if exc.code == "connection-lost" and not exc.mid_stream:
            # The daemon went away before anything streamed: an
            # in-process rerun produces exactly the output the user
            # asked for, with nothing duplicated.
            print(
                f"note: lost connection to {args.server}; "
                "running in-process",
                file=sys.stderr,
            )
            return None
        print(f"error: {exc}", file=sys.stderr)
        # Daemon-side breakage — including a crashed workspace worker
        # or a connection lost after output already streamed — is exit
        # 3 (the caller must not trust partial output); bad requests
        # and bad input stay exit 2.
        return (
            3
            if exc.code in ("internal", "worker-crashed", "connection-lost")
            else 2
        )
    finally:
        client.close()
    report = api.report_from_dict(final["report"])
    return _RENDERERS[op](args, report)


# ----------------------------------------------------------------- commands


def cmd_check(args) -> int:
    if getattr(args, "server", None):
        code = _run_on_server(args, "check")
        if code is not None:
            return code
    stream = _jsonl_unit_streamer("check") if args.format == "jsonl" else None
    report = _session(args).check(
        api.CheckRequest(
            files=tuple(args.files),
            flow_sensitive=args.flow_sensitive,
            keep_going=args.keep_going,
            jobs=args.jobs,
            unit_timeout=args.unit_timeout,
        ),
        on_result=stream,
    )
    return _render_check(args, report)


def _render_check(args, report: api.Report) -> int:
    if args.format == "jsonl":
        _jsonl_summary(report)
        return report.exit_code
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return report.exit_code
    many = len(args.files) > 1
    for result in report.results:
        _print_unit_header(result.unit, many)
        if result.verdict == batch.SKIPPED:
            print("skipped (earlier unit failed; use --keep-going)")
            continue
        warnings = 0
        for diag in result.diagnostics:
            if diag.get("severity") == "error":
                print(diag["text"], file=sys.stderr)
            else:
                print(diag["text"])
                warnings += 1
        if result.verdict in (batch.CRASH, batch.TIMEOUT) or (
            result.verdict == batch.ERROR and not result.diagnostics
        ):
            print(f"error: {result.error}", file=sys.stderr)
        checks = result.detail.get("runtime_checks", 0)
        if checks:
            print(f"{checks} runtime check(s) inserted for casts")
        print(f"{warnings} qualifier warning(s)")
    if many:
        print(report.summary())
    _maybe_note_interrupt(report)
    return report.exit_code


def cmd_prove(args) -> int:
    if getattr(args, "server", None):
        code = _run_on_server(args, "prove")
        if code is not None:
            return code
    report = _session(args).prove(
        api.ProveRequest(
            files=tuple(args.files),
            qualifier=args.qualifier,
            time_limit=args.time_limit,
            retries=args.retries,
            cache=args.cache,
            cache_dir=args.cache_dir,
            session=args.session,
            shard=args.shard,
            explain=args.explain,
            keep_going=args.keep_going,
            jobs=args.jobs,
            unit_timeout=args.unit_timeout,
        ),
        on_result=(
            _jsonl_unit_streamer("prove") if args.format == "jsonl" else None
        ),
    )
    return _render_prove(args, report)


def _render_prove(args, report: api.Report) -> int:
    if args.format == "jsonl":
        _jsonl_summary(report)
        return report.exit_code
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return report.exit_code
    many = len(args.files) > 1
    for result in report.results:
        _print_unit_header(result.unit, many)
        if result.verdict == batch.SKIPPED:
            print("skipped (earlier unit failed; use --keep-going)")
            continue
        if result.error:
            print(f"error: {result.error}", file=sys.stderr)
        for entry in result.detail.get("qualifiers", ()):
            print(entry["summary"])
    if many:
        print(report.summary())
    _maybe_note_interrupt(report)
    cache_meta = report.batch.meta.get("cache", {})
    if cache_meta.get("enabled"):
        print(
            f"proof cache: {cache_meta.get('hits', 0)} hit(s), "
            f"{cache_meta.get('misses', 0)} miss(es), "
            f"{cache_meta.get('stores', 0)} stored, "
            f"{cache_meta.get('stale', 0)} stale "
            f"({cache_meta.get('dir')})"
        )
    return report.exit_code


def cmd_run(args) -> int:
    try:
        value, output = _session(args).run(
            args.file, entry=args.entry, args=list(args.args)
        )
    except CRuntimeError as exc:
        print(f"runtime error: {exc}", file=sys.stderr)
        return 2
    sys.stdout.write("".join(output))
    print(f"[exit value: {value}]")
    return 0


def cmd_show_ir(args) -> int:
    print(_session(args).show_ir(args.file))
    return 0


def cmd_infer(args) -> int:
    if getattr(args, "server", None):
        code = _run_on_server(args, "infer")
        if code is not None:
            return code
    try:
        report = _session(args).infer(
            api.InferRequest(
                files=tuple(args.files),
                qualifier=args.qualifier,
                flow_sensitive=args.flow_sensitive,
                keep_going=args.keep_going,
                jobs=args.jobs,
                unit_timeout=args.unit_timeout,
            ),
            on_result=(
                _jsonl_unit_streamer("infer")
                if args.format == "jsonl"
                else None
            ),
        )
    except api.UnknownQualifierError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return _render_infer(args, report)


def _render_infer(args, report: api.Report) -> int:
    if args.format == "jsonl":
        _jsonl_summary(report)
        return report.exit_code
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return report.exit_code
    many = len(args.files) > 1
    for result in report.results:
        _print_unit_header(result.unit, many)
        if result.verdict == batch.SKIPPED:
            print("skipped (earlier unit failed; use --keep-going)")
            continue
        if result.error:
            print(f"error: {result.error}", file=sys.stderr)
            continue
        print(result.detail["summary"])
        for entity in result.detail["entities"]:
            print(f"  {args.qualifier} at {entity}")
    if many:
        print(report.summary())
    _maybe_note_interrupt(report)
    return report.exit_code


#: Shared by the in-process and ``--server`` paths: both end with a
#: Report and the same terminal rendering.
_RENDERERS = {
    "check": lambda args, report: _render_check(args, report),
    "prove": lambda args, report: _render_prove(args, report),
    "infer": lambda args, report: _render_infer(args, report),
}


def cmd_serve(args) -> int:
    from repro.serve import client as serve_client
    from repro.serve import server as serve_server

    if args.status or args.stop:
        # --status/--stop talk to a running daemon: over TCP when
        # --listen is given, else over the unix socket.
        address = args.listen or args.socket
        try:
            client = serve_client.connect(address)
        except OSError as exc:
            print(f"error: no server at {address}: {exc}", file=sys.stderr)
            return 2
        try:
            if args.status:
                print(json.dumps(client.status(), indent=2))
            else:
                print(json.dumps(client.shutdown()))
        except serve_client.ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        finally:
            client.close()
        return 0
    return serve_server.serve_main(
        args.socket, listen=args.listen, workers=args.workers
    )


def cmd_difftest(args) -> int:
    report = _session(args).difftest(
        api.DifftestRequest(
            seed=args.seed,
            count=args.count,
            budget=args.budget,
            time_limit=args.time_limit,
            out_dir=args.out_dir or "",
            replay=tuple(args.replay),
            keep_going=args.keep_going,
            jobs=args.jobs,
            unit_timeout=args.unit_timeout,
        ),
        on_result=(
            _jsonl_unit_streamer("difftest")
            if args.format == "jsonl"
            else None
        ),
    )
    if args.format == "jsonl":
        _jsonl_summary(report)
        return report.exit_code
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return report.exit_code
    meta = report.batch.meta["difftest"]
    errored = 0
    for result in report.results:
        if result.error:
            errored += 1
            print(f"error: {result.unit}: {result.error}", file=sys.stderr)
        for diag in result.diagnostics:
            print(diag["text"])
    for artifact in meta["artifacts"]:
        print(f"artifact: {artifact}")
    skipped = meta["cases_skipped_budget"]
    ran = meta["count"] - skipped - errored
    print(
        f"difftest: {ran} case(s) run (seed {meta['seed']}), "
        f"{meta['findings']} disagreement(s)"
        + (f", {skipped} skipped on budget" if skipped else "")
        + (f", {errored} unit error(s)" if errored else "")
    )
    return report.exit_code


def cmd_bench(args) -> int:
    from repro.obs import bench

    return bench.main(args)


def cmd_cache(args) -> int:
    if args.cache_command == "clear":
        removed = api.cache_clear(cache_dir=args.cache_dir)
        print(f"proof cache cleared: {removed} entr(ies) removed")
        return 0
    stats = api.cache_stats(cache_dir=args.cache_dir)
    if args.format == "json":
        print(json.dumps(stats, indent=2))
        return 0
    print(f"proof cache at {stats['path']}")
    print(f"  entries:     {stats['entries']}")
    print(f"  size:        {stats['size_bytes']} bytes")
    print(f"  disk tier:   {'ok' if stats['disk'] else 'DISABLED (corrupt or unwritable)'}")
    lifetime = stats["lifetime"]
    print(
        "  lifetime:    "
        f"{lifetime['hits']} hit(s), {lifetime['misses']} miss(es), "
        f"{lifetime['stores']} stored, {lifetime['stale']} stale, "
        f"{lifetime['evictions']} evicted, {lifetime['errors']} error(s)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semantic type qualifiers: check, prove, run.",
    )
    import repro

    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro.__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_flow=True):
        p.add_argument(
            "--quals",
            action="append",
            metavar="FILE",
            help="qualifier definition file; may be repeated — files "
            "compose in order, later names overriding earlier ones",
        )
        p.add_argument(
            "--no-std",
            action="store_true",
            help="do not load the standard qualifier library",
        )
        p.add_argument(
            "--trust-constants",
            action="store_true",
            help="treat constants as untainted (section 6.3)",
        )
        if with_flow:
            p.add_argument(
                "--flow-sensitive",
                action="store_true",
                help="enable guard refinement (section 8 extension)",
            )

    def profile_flags(p):
        p.add_argument(
            "--profile",
            action="store_true",
            help="collect phase/prover/cache timings: summary on stderr, "
            "additive `timings` key in --format json reports",
        )
        p.add_argument(
            "--trace-out",
            metavar="FILE",
            default=None,
            help="write the full span/counter trace to FILE as JSON "
            "(implies profiling)",
        )

    def server_flag(p):
        from repro.serve.protocol import default_server_address

        p.add_argument(
            "--server",
            metavar="ADDR",
            default=default_server_address(),
            help="proxy this command to a running `repro serve` daemon "
            "at ADDR — a unix-socket path, host:port, or tcp://host:port "
            "(default: $REPRO_SERVE_ADDR or $REPRO_SERVE_SOCKET); falls "
            "back to in-process execution when nothing is listening, "
            "with identical output either way",
        )

    def batch_flags(p):
        p.add_argument(
            "--keep-going",
            action="store_true",
            help="continue past units that fail (ERROR/TIMEOUT/CRASH)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="run units in N worker processes (with per-child deadlines)",
        )
        p.add_argument(
            "--unit-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock budget per unit of work",
        )
        p.add_argument(
            "--format",
            choices=("text", "json", "jsonl"),
            default="text",
            help="report format (json: structured per-unit verdicts; "
            "jsonl: one record per unit streamed as it settles, then a "
            "summary record)",
        )
        p.add_argument(
            "--inject-faults",
            default=None,
            metavar="SPEC",
            help="deterministic chaos testing, e.g. 'seed=0,kill=0.3' "
            "(sites: kill, stall, drop_pipe, corrupt_cache, "
            "slow_prover; also via REPRO_FAULTS)",
        )

    p_check = sub.add_parser("check", help="qualifier-check C files")
    p_check.add_argument("files", nargs="+", metavar="file")
    common(p_check)
    batch_flags(p_check)
    profile_flags(p_check)
    server_flag(p_check)
    p_check.set_defaults(fn=cmd_check)

    p_prove = sub.add_parser(
        "prove", help="soundness-check qualifier definitions"
    )
    p_prove.add_argument("files", nargs="+", metavar="file")
    p_prove.add_argument("--qualifier", help="prove only this qualifier")
    p_prove.add_argument("--time-limit", type=float, default=45.0)
    p_prove.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry GAVE_UP obligations up to N times with escalating "
        "budgets and exponential backoff",
    )
    p_prove.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=True,
        help="consult/update the persistent proof cache (default)",
    )
    p_prove.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="re-prove every obligation from scratch",
    )
    p_prove.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"proof cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    p_prove.add_argument(
        "--no-session",
        dest="session",
        action="store_false",
        default=True,
        help="disable incremental prover sessions (cold prover per "
        "obligation; verdicts are unaffected either way)",
    )
    p_prove.add_argument(
        "--no-shard",
        dest="shard",
        action="store_false",
        default=True,
        help="with --jobs N, parallelize at file granularity instead "
        "of sharding the obligation stream across the pool",
    )
    p_prove.add_argument(
        "--no-explain",
        dest="explain",
        action="store_false",
        default=True,
        help="find conflict cores by ddmin search instead of proof-"
        "forest explanations (slower ablation; verdicts are unaffected "
        "either way)",
    )
    batch_flags(p_prove)
    profile_flags(p_prove)
    server_flag(p_prove)
    p_prove.set_defaults(fn=cmd_prove)

    p_run = sub.add_parser("run", help="execute a C file with runtime checks")
    p_run.add_argument("file")
    p_run.add_argument("--entry", default="main")
    p_run.add_argument("args", nargs="*", type=int)
    common(p_run, with_flow=False)
    profile_flags(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_ir = sub.add_parser("show-ir", help="print the lowered CIL-style IR")
    p_ir.add_argument("file")
    common(p_ir, with_flow=False)
    profile_flags(p_ir)
    p_ir.set_defaults(fn=cmd_show_ir)

    p_infer = sub.add_parser("infer", help="infer annotations for a qualifier")
    p_infer.add_argument("files", nargs="+", metavar="file")
    p_infer.add_argument("--qualifier", required=True)
    common(p_infer)
    batch_flags(p_infer)
    profile_flags(p_infer)
    server_flag(p_infer)
    p_infer.set_defaults(fn=cmd_infer)

    p_diff = sub.add_parser(
        "difftest",
        help="differentially test the pipeline on generated cases",
        description=(
            "Generate seed-deterministic C programs and qualifier files, "
            "then cross-check the prover against brute-force enumeration, "
            "native against instrumented execution, and the prover against "
            "metamorphic variants of its own goals.  Disagreements exit 1 "
            "and drop minimized, replayable artifacts (see docs/testing.md)."
        ),
    )
    p_diff.add_argument(
        "--seed", type=int, default=0, help="corpus seed (default 0)"
    )
    p_diff.add_argument(
        "--count",
        type=int,
        default=100,
        metavar="N",
        help="number of generated cases (default 100)",
    )
    p_diff.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for the whole run; remaining cases are "
        "skipped, not failed",
    )
    p_diff.add_argument(
        "--time-limit",
        type=float,
        default=6.0,
        metavar="SECONDS",
        help="per-proof prover budget within each case (default 6)",
    )
    p_diff.add_argument(
        "--out-dir",
        default=None,
        metavar="DIR",
        help="failure artifact directory (default .repro-difftest)",
    )
    p_diff.add_argument(
        "--replay",
        nargs="+",
        default=(),
        metavar="ARTIFACT",
        help="re-run stored failure artifacts instead of generating cases",
    )
    batch_flags(p_diff)
    profile_flags(p_diff)
    p_diff.set_defaults(fn=cmd_difftest)

    p_bench = sub.add_parser(
        "bench",
        help="run the benchmark suites and write BENCH_<name>.json",
        description=(
            "Unified benchmark runner: executes the benchmarks/bench_*.py "
            "suites (no pytest needed) with warmup and repeat control, "
            "profiling enabled, and writes one BENCH_<name>.json with "
            "per-suite wall times, the prover-theory breakdown, cache "
            "counters, and machine info (see docs/observability.md)."
        ),
    )
    p_bench.add_argument(
        "--suite",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this suite (a benchmarks/bench_<NAME>.py file); "
        "may be repeated",
    )
    p_bench.add_argument(
        "--smoke",
        action="store_true",
        help="quick well-formedness run: the smallest suites, one round "
        "each, written as BENCH_smoke.json",
    )
    p_bench.add_argument(
        "--warmup", type=int, default=1, metavar="N",
        help="warmup rounds per case before timing (default 1)",
    )
    p_bench.add_argument(
        "--repeat", type=int, default=3, metavar="N",
        help="timed rounds per case (default 3; min is kept)",
    )
    p_bench.add_argument(
        "--name",
        default=None,
        metavar="NAME",
        help="output stem: BENCH_<NAME>.json (default: 'all', or "
        "'smoke' with --smoke)",
    )
    p_bench.add_argument(
        "--out-dir", default=".", metavar="DIR",
        help="directory for BENCH_<name>.json (default: cwd)",
    )
    p_bench.add_argument(
        "--list", action="store_true", help="list suites and exit"
    )
    p_bench.set_defaults(fn=cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="run the checker daemon (unix socket and/or TCP)",
        description=(
            "Long-lived checker-as-a-service: keeps workspaces (parsed "
            "state fingerprints, incremental per-function verdicts, warm "
            "proof caches) resident and serves check/prove/infer/status/"
            "shutdown requests as newline-delimited JSON over a unix "
            "socket and/or a TCP endpoint.  Point `repro check --server "
            "ADDR` (or $REPRO_SERVE_ADDR / $REPRO_SERVE_SOCKET) at it; "
            "see docs/serve.md."
        ),
    )
    from repro.harness.supervisor import env_knob
    from repro.serve.protocol import DEFAULT_SOCKET

    p_serve.add_argument(
        "--socket",
        metavar="PATH",
        default=os.environ.get("REPRO_SERVE_SOCKET") or DEFAULT_SOCKET,
        help="unix socket path to serve on "
        f"(default: $REPRO_SERVE_SOCKET or {DEFAULT_SOCKET})",
    )
    p_serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="additionally serve the same protocol over TCP (port 0 "
        "picks an ephemeral port, announced on stdout)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=env_knob("REPRO_SERVE_WORKERS", 0, int),
        help="run each configuration's workspace in one of up to N "
        "persistent worker processes (crash-isolated, multi-core); "
        "0 keeps work in-process on executor threads "
        "(default: $REPRO_SERVE_WORKERS or 0)",
    )
    p_serve.add_argument(
        "--status",
        action="store_true",
        help="print a running daemon's status as JSON and exit",
    )
    p_serve.add_argument(
        "--stop",
        action="store_true",
        help="ask a running daemon to shut down gracefully and exit",
    )
    p_serve.set_defaults(fn=cmd_serve)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the persistent proof cache"
    )
    p_cache.add_argument(
        "cache_command",
        choices=("stats", "clear"),
        help="stats: entries, size, lifetime counters; clear: drop all",
    )
    p_cache.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"proof cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    p_cache.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    p_cache.set_defaults(fn=cmd_cache)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # --profile / --trace-out turn the collector on for this invocation
    # only; the summary goes to stderr so --format json stays parseable.
    profiling = bool(
        getattr(args, "profile", False) or getattr(args, "trace_out", None)
    )
    fault_spec = getattr(args, "inject_faults", None)
    if fault_spec:
        try:
            faults.activate(fault_spec)
        except faults.FaultSpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if profiling:
        obs.enable()
        marker = obs.mark()
        started = time.perf_counter()
    try:
        try:
            return args.fn(args)
        except (ParseError, LexError, LowerError, QualParseError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except UnicodeDecodeError as exc:
            print(f"error: input is not valid UTF-8: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:  # unreadable file, missing file, EACCES, ...
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except RecursionError:
            print(
                "error: input too deeply nested (recursion limit exceeded)",
                file=sys.stderr,
            )
            return 2
    finally:
        if fault_spec:
            faults.deactivate()
        if profiling:
            total_ms = (time.perf_counter() - started) * 1000.0
            if getattr(args, "profile", False):
                timings = obs.build_timings(
                    obs.since(marker), total_ms=total_ms
                )
                print(obs.format_timings(timings), file=sys.stderr)
            trace_out = getattr(args, "trace_out", None)
            if trace_out:
                obs.write_trace(trace_out, command=getattr(args, "command", ""))
            obs.disable()
            obs.reset()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
