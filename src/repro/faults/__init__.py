"""Deterministic fault injection for chaos testing the pipeline.

Production runs meet worker crashes, hard stalls, dropped result
pipes, corrupted cache files, and provers that blow their deadlines.
This package makes every one of those failure modes *reproducible*: a
:class:`FaultPlan` is a seed plus per-site firing rates, and each
decision is a pure function of ``(seed, site, key)`` — no global RNG
state, no ordering sensitivity, identical across processes.  Running
the same plan over the same inputs injects exactly the same faults.

Activation (both forms compose; the CLI flag wins):

* ``python -m repro check ... --inject-faults "seed=0,kill=0.3"``
* ``REPRO_FAULTS="seed=0,kill=0.3" python -m repro check ...``

The environment variable is also how an activated plan crosses the
``spawn`` process boundary; ``fork`` children inherit the module state
directly.

Fault sites (each counted in ``repro.obs`` as ``faults.<site>``):

=================  ====================================================
``kill``           a pool worker SIGKILLs itself at unit start —
                   indistinguishable from an OOM kill
``stall``          a pool worker stops heartbeating and sleeps — a
                   hard hang the supervisor must detect
``drop_pipe``      a pool worker closes its result pipe and exits
                   without sending — the result is lost in transit
``corrupt_cache``  bytes in the middle of the proof cache's sqlite
                   file are garbled before it is opened
``slow_prover``    a proof obligation stalls (deadline-cooperatively)
                   as if the prover's budget estimate was inflated
=================  ====================================================

``kill``/``stall``/``drop_pipe`` fire only inside pool workers
(:func:`enter_worker` marks the process) so ``--jobs 1`` runs are
never killed outright.  Worker-fault keys include the attempt number,
so a unit that dies on attempt 1 usually survives its retry — and a
rate of ``1.0`` makes a *poison* unit that kills every worker, which
is how the supervisor's quarantine path is exercised.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Set

from repro import obs

#: Environment variable carrying the active plan spec across processes.
ENV_VAR = "REPRO_FAULTS"

#: Recognized fault sites (spec keys carrying a rate in [0, 1]).
SITES = ("kill", "stall", "drop_pipe", "corrupt_cache", "slow_prover")

#: Spec keys carrying a duration in seconds, not a rate.
DURATIONS = ("stall_s", "slow_prover_s")


class FaultSpecError(ValueError):
    """A ``--inject-faults`` / ``REPRO_FAULTS`` spec does not parse."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected faults."""

    seed: int = 0
    rates: Dict[str, float] = field(default_factory=dict)
    stall_s: float = 3600.0  # how long a stalled worker sleeps
    slow_prover_s: float = 5.0  # how long a slow proof stalls

    # ------------------------------------------------------------ parsing

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``"seed=0,kill=0.3,stall=0.1"`` into a plan."""
        seed = 0
        rates: Dict[str, float] = {}
        durations = {"stall_s": cls.stall_s, "slow_prover_s": cls.slow_prover_s}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise FaultSpecError(
                    f"bad fault spec item {part!r} (want key=value)"
                )
            name, _, value = part.partition("=")
            name = name.strip()
            value = value.strip()
            try:
                if name == "seed":
                    seed = int(value)
                elif name in DURATIONS:
                    durations[name] = float(value)
                elif name in SITES:
                    rate = float(value)
                    if not 0.0 <= rate <= 1.0:
                        raise FaultSpecError(
                            f"fault rate {name}={rate} outside [0, 1]"
                        )
                    rates[name] = rate
                else:
                    raise FaultSpecError(
                        f"unknown fault site {name!r} "
                        f"(known: seed, {', '.join(SITES + DURATIONS)})"
                    )
            except ValueError as exc:
                if isinstance(exc, FaultSpecError):
                    raise
                raise FaultSpecError(
                    f"bad value in fault spec item {part!r}: {exc}"
                ) from None
        return cls(
            seed=seed,
            rates=rates,
            stall_s=durations["stall_s"],
            slow_prover_s=durations["slow_prover_s"],
        )

    def to_spec(self) -> str:
        """The canonical spec string (round-trips through :meth:`parse`)."""
        parts = [f"seed={self.seed}"]
        parts.extend(
            f"{site}={self.rates[site]:g}"
            for site in SITES
            if site in self.rates
        )
        if self.stall_s != FaultPlan.stall_s:
            parts.append(f"stall_s={self.stall_s:g}")
        if self.slow_prover_s != FaultPlan.slow_prover_s:
            parts.append(f"slow_prover_s={self.slow_prover_s:g}")
        return ",".join(parts)

    # ---------------------------------------------------------- decisions

    def rate(self, site: str) -> float:
        return self.rates.get(site, 0.0)

    def decide(self, site: str, key: str) -> bool:
        """Deterministically decide whether ``site`` fires for ``key``.

        The decision is ``H(seed, site, key) < rate`` with a
        cryptographic hash, so it is stable across processes, Python
        versions (no ``hash()`` salting), and call orderings.
        """
        rate = self.rate(site)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.seed}:{site}:{key}".encode("utf-8")
        ).digest()
        roll = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return roll < rate


# ------------------------------------------------------------- activation

_PLAN: Optional[FaultPlan] = None
_IN_WORKER = False
_FIRED_ONCE: Set[str] = set()


def activate(spec_or_plan) -> FaultPlan:
    """Install a plan for this process *and* (via the environment) for
    every child process it starts."""
    global _PLAN
    plan = (
        spec_or_plan
        if isinstance(spec_or_plan, FaultPlan)
        else FaultPlan.parse(str(spec_or_plan))
    )
    _PLAN = plan
    os.environ[ENV_VAR] = plan.to_spec()
    return plan


def deactivate() -> None:
    """Remove the active plan (and its environment carrier)."""
    global _PLAN
    _PLAN = None
    _FIRED_ONCE.clear()
    os.environ.pop(ENV_VAR, None)


def active() -> Optional[FaultPlan]:
    """The live plan: the activated one, else one parsed from
    ``REPRO_FAULTS`` (how spawned children pick the plan up)."""
    if _PLAN is not None:
        return _PLAN
    spec = os.environ.get(ENV_VAR)
    if spec:
        try:
            return activate(spec)
        except FaultSpecError:
            return None
    return None


def enter_worker() -> None:
    """Mark this process as a pool worker (worker-only faults may now
    fire).  Called by the batch child entry, never by user code."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    return _IN_WORKER


# ------------------------------------------------------------ fault sites

#: Sites that must never fire in the parent/driver process.
_WORKER_ONLY = frozenset({"kill", "stall", "drop_pipe"})


def fire(site: str, key: str) -> bool:
    """Should ``site`` fire for ``key`` right now?  Counts a firing in
    obs (``faults.<site>``)."""
    plan = active()
    if plan is None:
        return False
    if site in _WORKER_ONLY and not _IN_WORKER:
        return False
    if not plan.decide(site, key):
        return False
    obs.incr(f"faults.{site}")
    return True


def fire_once(site: str, key: str) -> bool:
    """Like :func:`fire`, but at most once per process per (site, key)
    — for sites like cache corruption where re-firing on every retry
    would defeat the recovery being tested."""
    token = f"{site}:{key}"
    if token in _FIRED_ONCE:
        return False
    if not fire(site, key):
        return False
    _FIRED_ONCE.add(token)
    return True


def corrupt_file(path: str) -> bool:
    """Garble a span of bytes in the middle of ``path`` (the
    ``corrupt_cache`` payload).  Returns whether anything was written."""
    try:
        size = os.path.getsize(path)
        if size == 0:
            return False
        with open(path, "r+b") as handle:
            # Stamp over the sqlite header *and* a mid-file span so both
            # open-time and query-time corruption paths are reachable.
            handle.seek(0)
            handle.write(b"\xde\xad\xbe\xef" * 4)
            handle.seek(max(0, size // 2))
            handle.write(b"\xff\x00" * 32)
        return True
    except OSError:
        return False


def maybe_slow_prover(key: str, deadline=None) -> None:
    """The ``slow_prover`` site: stall one proof obligation as if the
    prover's deadline estimate was inflated.  The stall sleeps in small
    slices and stops once ``deadline`` expires, so a unit-level budget
    still turns it into a clean cooperative ``TIMEOUT``."""
    if not fire("slow_prover", key):
        return
    plan = active()
    budget = plan.slow_prover_s if plan is not None else 0.0
    step = 0.02
    spent = 0.0
    while spent < budget:
        if deadline is not None and deadline.expired():
            return
        time.sleep(step)
        spent += step


def scaled_plan(**overrides) -> Optional[FaultPlan]:
    """A copy of the active plan with fields replaced (test helper)."""
    plan = active()
    if plan is None:
        return None
    return replace(plan, **overrides)
