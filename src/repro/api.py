"""The stable library facade over the parse→lower→check→prove pipeline.

Programmatic users should depend on this module — not on ``repro.cli``
(whose argparse plumbing is an implementation detail) and not on the
internal module layout (which refactors freely).  The surface is two
session objects, four request dataclasses, and one report:

* :class:`SessionConfig` — the *immutable* qualifier environment:
  which definition files are loaded (in order, later files overriding
  earlier ones by name), whether the standard library is included, the
  paper's ``trust-constants`` switch, and the proof-cache settings.
* :class:`Workspace` — the *stateful* entry object: owns loaded
  units, per-function content fingerprints, and an incremental
  verdict store, so a long-lived process (``python -m repro serve``)
  re-checks only the functions an edit actually touched and replays
  cached verdicts for everything else.  One-shot use is just a
  ``Workspace`` that is thrown away after one request.
* :class:`CheckRequest` / :class:`ProveRequest` / :class:`InferRequest`
  / :class:`DifftestRequest` — one batch invocation each, mirroring
  the CLI flag-for-flag.
* :class:`Report` — the result: per-unit verdicts, exit code, and a
  JSON-ready :meth:`Report.to_dict` stamped with
  ``schema_version`` = :data:`SCHEMA_VERSION`.

Every ``--format json`` payload the CLI prints is exactly
``Report.to_dict()`` (or :func:`cache_stats` for the ``cache``
subcommand), so the schema documented in docs/robustness.md is the
schema of this module.  :func:`report_from_dict` reconstructs a
:class:`Report` from such a payload (the ``repro serve`` client uses
it so remote runs format identically to local ones).

.. deprecated:: ``Session``
   :class:`Session` — the original one-shot facade — is kept as a thin
   alias that builds a fresh one-shot :class:`Workspace` per call, so
   every existing caller keeps working unchanged.  New code should
   construct a :class:`SessionConfig` and a :class:`Workspace`
   directly; ``Session`` will not grow new capabilities.

Example::

    from repro.api import ProveRequest, SessionConfig, Workspace

    with Workspace(SessionConfig()) as ws:
        report = ws.prove(ProveRequest(files=("defs.qual",)))
    assert report.exit_code == 0
    assert report.to_dict()["schema_version"] == 1
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.cache import fingerprint as _fingerprint
from repro.cache.store import DEFAULT_CACHE_DIR, ProofCache
from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.cil.printer import program_to_c
from repro.core.checker.diagnostics import code_for
from repro.core.checker.typecheck import QualifierChecker
from repro.core.qualifiers.ast import QualifierDef, QualifierSet
from repro.core.qualifiers.library import standard_qualifiers
from repro.core.qualifiers.parser import parse_qualifiers
from repro.core.soundness.checker import check_soundness
from repro.harness import batch
from repro.harness.watchdog import Deadline, RetryPolicy
from repro.semantics.csem import run_program

#: Version of the report payload shape (``Report.to_dict`` and the
#: CLI's ``--format json`` output).  Bump only on breaking changes —
#: removing or renaming a field, changing a field's type — never for
#: additions; consumers must tolerate new keys.
SCHEMA_VERSION = 1


class UnknownQualifierError(ValueError):
    """The requested qualifier is not defined in the session's set."""


def _tool_version() -> str:
    """The package version (every JSON payload is stamped with it).

    Imported lazily: ``repro.__init__`` imports this module, so a
    top-level import would be circular.
    """
    from repro import __version__

    return __version__


# ----------------------------------------------------------------- requests


@dataclass(frozen=True)
class BatchOptions:
    """Flags shared by every batch command (see docs/robustness.md).

    ``profile=True`` collects phase/prover/cache timings for the
    invocation and attaches them as the additive ``timings`` key of the
    JSON report (see docs/observability.md).  Off by default and free
    when off.
    """

    keep_going: bool = False
    jobs: int = 1
    unit_timeout: Optional[float] = None
    profile: bool = False


@dataclass(frozen=True)
class CheckRequest(BatchOptions):
    """One ``check`` invocation: qualifier-check C translation units."""

    files: Tuple[str, ...] = ()
    flow_sensitive: bool = False


@dataclass(frozen=True)
class ProveRequest(BatchOptions):
    """One ``prove`` invocation: soundness-check ``.qual`` files.

    ``session=False`` (``--no-session``) disables incremental prover
    sessions — every obligation then gets a cold prover, the pre-PR-8
    behavior.  ``shard=False`` (``--no-shard``) keeps parallelism at
    file granularity: with ``jobs > 1`` the default is to shard the
    *obligation stream* across the pool instead (see
    docs/architecture.md, "obligation lifecycle").  ``explain=False``
    (``--no-explain``) swaps proof-forest conflict explanations for the
    older search-based ddmin core minimizer.  None of these flags can
    change a PROVED/REFUTED verdict.
    """

    files: Tuple[str, ...] = ()
    qualifier: Optional[str] = None  # prove only this qualifier
    time_limit: float = 45.0
    retries: int = 0
    cache: bool = True
    cache_dir: str = DEFAULT_CACHE_DIR
    session: bool = True
    shard: bool = True
    explain: bool = True


@dataclass(frozen=True)
class InferRequest(BatchOptions):
    """One ``infer`` invocation: infer annotations for one qualifier."""

    files: Tuple[str, ...] = ()
    qualifier: str = ""
    flow_sensitive: bool = False


@dataclass(frozen=True)
class DifftestRequest(BatchOptions):
    """One ``difftest`` invocation: differential testing of the
    pipeline on generated cases (see docs/testing.md).

    Each case is one batch unit named ``case-NNNNN`` and is a pure
    function of ``(seed, index)``; ``budget`` caps the whole run in
    seconds (cases past the budget are skipped and counted, not
    failed).  ``replay`` switches to re-running stored failure
    artifacts instead of generating new cases."""

    seed: int = 0
    count: int = 100
    budget: Optional[float] = None
    time_limit: float = 6.0
    out_dir: str = ""  # empty: repro.difftest.runner.ARTIFACT_DIR
    replay: Tuple[str, ...] = ()


# ------------------------------------------------------------------- report


@dataclass
class Report:
    """The outcome of one batch invocation, JSON-ready.

    ``batch`` carries the per-unit verdicts and counts;
    :meth:`to_dict` is the exact ``--format json`` payload.
    """

    command: str
    batch: batch.BatchReport
    schema_version: int = SCHEMA_VERSION

    @property
    def exit_code(self) -> int:
        return self.batch.exit_code

    @property
    def results(self) -> List[batch.UnitResult]:
        return self.batch.results

    def counts(self) -> Dict[str, int]:
        return self.batch.counts()

    def summary(self) -> str:
        return self.batch.summary()

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "command": self.command,
            "version": _tool_version(),
            **self.batch.to_dict(),
        }


#: Payload keys produced by :meth:`Report.to_dict` itself (everything
#: else in a payload is run-level ``meta``).
_REPORT_ENVELOPE_KEYS = frozenset(
    ("schema_version", "command", "version", "units", "counts", "elapsed",
     "exit_code")
)


def report_from_dict(payload: dict) -> Report:
    """Reconstruct a :class:`Report` from a :meth:`Report.to_dict`
    payload — the inverse used by the ``repro serve`` client, so a
    report received over the wire formats exactly like a local one.

    The round trip preserves units, verdicts, diagnostics, detail, and
    meta; ``exit_code`` is recomputed from the verdicts (and agrees
    with the payload's by construction).
    """
    results = [
        batch.UnitResult(
            unit=u.get("unit", ""),
            verdict=u.get("verdict", batch.CRASH),
            elapsed=u.get("elapsed", 0.0),
            diagnostics=list(u.get("diagnostics") or []),
            error=u.get("error", ""),
            detail=dict(u.get("detail") or {}),
            attempts=int(u.get("attempts", 1)),
        )
        for u in payload.get("units", ())
    ]
    meta = {
        k: v for k, v in payload.items() if k not in _REPORT_ENVELOPE_KEYS
    }
    batch_report = batch.BatchReport(
        results=results, elapsed=payload.get("elapsed", 0.0), meta=meta
    )
    return Report(
        payload.get("command", ""),
        batch_report,
        schema_version=payload.get("schema_version", SCHEMA_VERSION),
    )


#: Worst-first ordering used to combine per-obligation verdicts into a
#: unit verdict (distinct from exit-code severity, which ties some).
_VERDICT_RANK = {
    batch.OK: 0,
    batch.WARNINGS: 1,
    batch.UNKNOWN: 2,
    batch.GAVE_UP: 3,
    batch.TIMEOUT: 4,
    batch.ERROR: 5,
    batch.CRASH: 6,
}


def _worst(verdicts) -> str:
    return max(verdicts, key=lambda v: _VERDICT_RANK.get(v, 6), default=batch.OK)


def _read_source(path: str) -> str:
    # Binary read + explicit decode so a non-UTF-8 file produces a
    # clean UnicodeDecodeError (input error) instead of a traceback.
    with open(path, "rb") as handle:
        return handle.read().decode("utf-8")


def _sum_dataflow(per_function: Dict[str, dict]) -> dict:
    """Fold per-function solver stats into one totals dict."""
    totals = {
        "functions": 0, "blocks": 0, "edges": 0, "iterations": 0, "ms": 0.0,
    }
    for stats in per_function.values():
        totals["functions"] += 1
        totals["blocks"] += stats.get("blocks", 0)
        totals["edges"] += stats.get("edges", 0)
        totals["iterations"] += stats.get("iterations", 0)
        totals["ms"] += stats.get("ms", 0.0)
    totals["ms"] = round(totals["ms"], 3)
    return totals


def _aggregate_dataflow_meta(batch_report: batch.BatchReport) -> None:
    """Sum each unit's dataflow totals into run-level meta (additive
    key; ``sum_detail_counters`` cannot reach the nested dict)."""
    run = {"functions": 0, "blocks": 0, "edges": 0, "iterations": 0, "ms": 0.0}
    seen = False
    for result in batch_report.results:
        totals = result.detail.get("dataflow", {}).get("totals")
        if not isinstance(totals, dict):
            continue
        seen = True
        for key in run:
            run[key] += totals.get(key, 0)
    if seen:
        run["ms"] = round(run["ms"], 3)
        batch_report.meta["dataflow"] = run


def _aggregate_incremental_meta(batch_report: batch.BatchReport) -> None:
    """Sum each unit's incremental counters into run-level meta (only
    present on incremental-workspace runs, so one-shot payloads — and
    their goldens — are unchanged)."""
    totals = {
        "units": 0, "units_replayed": 0,
        "functions": 0, "rechecked": 0, "replayed": 0,
    }
    seen = False
    for result in batch_report.results:
        inc = result.detail.get("incremental")
        if not isinstance(inc, dict):
            continue
        seen = True
        totals["units"] += 1
        totals["units_replayed"] += 1 if inc.get("unit_replayed") else 0
        for key in ("functions", "rechecked", "replayed"):
            totals[key] += inc.get(key, 0)
    if seen:
        batch_report.meta["incremental"] = totals


def _aggregate_prove_incremental_meta(batch_report: batch.BatchReport) -> None:
    """Sum per-unit prove replay counters into run-level meta (mirrors
    :func:`_aggregate_incremental_meta`, at obligation granularity)."""
    totals = {
        "units": 0, "units_replayed": 0,
        "obligations": 0, "rechecked": 0, "replayed": 0,
    }
    seen = False
    for result in batch_report.results:
        inc = result.detail.get("incremental")
        if not isinstance(inc, dict):
            continue
        seen = True
        totals["units"] += 1
        totals["units_replayed"] += 1 if inc.get("unit_replayed") else 0
        for key in ("obligations", "rechecked", "replayed"):
            totals[key] += inc.get(key, 0)
    if seen:
        batch_report.meta["incremental"] = totals


def _obligation_verdicts(results) -> List[str]:
    """Map a report's per-obligation verdicts onto batch verdicts (the
    unit verdict is the worst of these plus OK)."""
    verdicts: List[str] = []
    for res in results:
        if res.verdict == "CRASH":
            verdicts.append(batch.CRASH)
        elif res.verdict == "TIMEOUT":
            verdicts.append(batch.TIMEOUT)
        elif res.verdict == "GAVE_UP":
            verdicts.append(batch.UNKNOWN)
        elif not res.proved:
            verdicts.append(batch.WARNINGS)
    return verdicts


def _start_profile(request: BatchOptions) -> Optional[dict]:
    """Begin profiling one invocation if asked to (``request.profile``)
    or if the collector is already on (``--profile`` at the CLI, or a
    surrounding bench run).  Returns the token ``_finish_profile``
    needs, or ``None`` when profiling stays off."""
    if not (request.profile or obs.enabled()):
        return None
    owner = not obs.enabled()
    if owner:
        obs.enable()
    return {"mark": obs.mark(), "start": time.perf_counter(), "owner": owner}


def _abort_profile(prof: Optional[dict]) -> None:
    """Error-path cleanup: never leave the collector enabled behind an
    exception if this invocation turned it on."""
    if prof is not None and prof["owner"]:
        obs.disable()


def _finish_profile(
    prof: Optional[dict], batch_report: batch.BatchReport
) -> None:
    """Attach the invocation's slice as ``meta["timings"]`` (an
    additive schema-v1 key) and restore the collector state."""
    if prof is None:
        return
    total_ms = (time.perf_counter() - prof["start"]) * 1000.0
    batch_report.meta["timings"] = obs.build_timings(
        obs.since(prof["mark"]), total_ms=total_ms
    )
    if prof["owner"]:
        obs.disable()


def _parse_error_dict(err: Exception) -> dict:
    return {
        "code": code_for("parse"),
        "kind": "parse",
        "qualifier": "-",
        "message": str(err),
        "severity": "error",
        "text": f"error: {err}",
    }


# ------------------------------------------------------------ configuration


@dataclass(frozen=True)
class SessionConfig:
    """The immutable qualifier environment every request runs under.

    ``quals`` lists qualifier-definition files loaded *in order*: a
    definition with an already-seen name replaces the earlier one, so
    a project file can override a team file can override the standard
    library.  ``cache``/``cache_dir`` are the proof-cache defaults for
    ``prove`` requests (a request's own explicit settings still win).

    Frozen on purpose: a :class:`Workspace` keys its cached state on
    this object, so everything that can change a verdict lives here.
    """

    quals: Tuple[str, ...] = ()
    no_std: bool = False
    trust_constants: bool = False
    cache: bool = True
    cache_dir: str = DEFAULT_CACHE_DIR

    def qualifier_set(self) -> QualifierSet:
        """The composed qualifier set for this configuration (re-read
        from the definition files on every call)."""
        defs: List[QualifierDef] = []
        if not self.no_std:
            defs.extend(standard_qualifiers(trust_constants=self.trust_constants))
        for path in self.quals:
            for qdef in parse_qualifiers(_read_source(path)):
                defs = [d for d in defs if d.name != qdef.name]
                defs.append(qdef)
        return QualifierSet(defs)

    def key(self) -> Tuple:
        """A hashable identity (the serve daemon routes requests to one
        workspace per distinct configuration)."""
        return (self.quals, self.no_std, self.trust_constants)


# ------------------------------------------------- incremental verdict store


@dataclass
class _FunctionRecord:
    """Everything one function contributed to its unit's check report,
    keyed by the content fingerprint it was computed under."""

    fingerprint: str
    diagnostics: List[dict] = field(default_factory=list)
    runtime_checks: int = 0
    dataflow: dict = field(default_factory=dict)


@dataclass
class _UnitState:
    """Per-unit incremental state: the raw-source digest (a match skips
    even the parse), the qualifier-environment digest it was checked
    under, and the per-function verdict records in program order."""

    source: str
    env: str
    functions: Dict[str, _FunctionRecord] = field(default_factory=dict)


@dataclass
class _ProveUnitState:
    """Per-unit prove replay state: source digest, the prove-environment
    digest (axioms + composed qualifiers + budgets + filter, see
    :func:`repro.cache.fingerprint.prove_environment_digest`), how many
    obligations the stored report covers, and the settled
    :class:`batch.UnitResult` itself (stored without its run-scoped
    ``cache``/``sessions``/``incremental`` detail keys)."""

    source: str
    env: str
    obligations: int
    result: batch.UnitResult


#: Incremental stores are LRU-bounded so a long-lived daemon workspace
#: cannot grow without limit; per-store cap, overridable through
#: ``REPRO_WORKSPACE_MAX_UNITS``.
MAX_UNIT_STATES = 256


def _max_unit_states() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_WORKSPACE_MAX_UNITS", "")))
    except ValueError:
        return MAX_UNIT_STATES


# ---------------------------------------------------------------- workspace


class Workspace:
    """The stateful entry object: every pipeline command hangs off it.

    A workspace owns mutable state an immutable :class:`SessionConfig`
    cannot: the composed qualifier set (re-validated against the
    definition files' content each request), resident proof caches for
    ``prove``, and — with ``incremental=True`` — a per-function verdict
    store for ``check``:

    * each checked function is fingerprinted over its lowered body, its
      unit's declared interface, and the qualifier environment (see
      :mod:`repro.cache.fingerprint`);
    * a re-check recomputes fingerprints and runs the checker only on
      functions whose fingerprint changed, replaying the stored
      verdicts (diagnostics, runtime-check counts, dataflow stats) for
      the rest;
    * an unchanged *file* (same source digest, same environment) skips
      even the parse.

    Incremental runs add an additive ``incremental`` block to each unit
    detail and to the report meta (``functions``/``rechecked``/
    ``replayed``); one-shot runs (``incremental=False``, the
    :class:`Session` path) produce byte-identical payloads to the
    pre-workspace facade.  Incremental ``check`` executes in-process
    (``jobs`` is ignored for it) so the verdict store lives in one
    place; ``prove`` still fans out through the batch pool and shares
    this workspace's resident proof cache.

    Not thread-safe: the serve daemon serializes requests per
    workspace (concurrency comes from distinct configurations and from
    the batch pool underneath).
    """

    def __init__(
        self,
        config: Optional[SessionConfig] = None,
        incremental: bool = False,
    ):
        self.config = config or SessionConfig()
        self.incremental = incremental
        self.counters: Dict[str, int] = {
            "requests": 0,
            "units_checked": 0,
            "units_replayed": 0,
            "functions_checked": 0,
            "functions_replayed": 0,
            "prove_units": 0,
            "prove_units_replayed": 0,
            "obligations_proved": 0,
            "obligations_replayed": 0,
            "session_reuse": 0,
            "units_evicted": 0,
        }
        self.max_units = _max_unit_states()
        #: Optional cross-request obligation dedup table (see
        #: :mod:`repro.serve.dedup`).  The serve daemon installs one
        #: shared table (or a pipe-backed proxy, in process-worker
        #: mode) so concurrent prove requests single-flight identical
        #: obligations; a plain in-process workspace leaves it None.
        self.dedup = None
        self._quals: Optional[QualifierSet] = None
        self._qual_texts: Optional[Tuple[str, ...]] = None
        self._env_digest: str = ""
        self._units: "OrderedDict[Tuple[str, bool], _UnitState]" = OrderedDict()
        self._prove_units: "OrderedDict[str, _ProveUnitState]" = OrderedDict()
        self._caches: Dict[str, ProofCache] = {}
        self._session_pool = None  # lazy repro.prover.session.SessionPool

    # ------------------------------------------------------------ loading

    def qualifier_set(self) -> QualifierSet:
        """The composed qualifier set, rebuilt whenever a definition
        file's content changes (so a warm workspace never trusts a
        stale parse — and the environment digest folded into every
        function fingerprint moves with it)."""
        texts = tuple(_read_source(p) for p in self.config.quals)
        if self._quals is None or texts != self._qual_texts:
            defs: List[QualifierDef] = []
            if not self.config.no_std:
                defs.extend(
                    standard_qualifiers(
                        trust_constants=self.config.trust_constants
                    )
                )
            for text in texts:
                for qdef in parse_qualifiers(text):
                    defs = [d for d in defs if d.name != qdef.name]
                    defs.append(qdef)
            self._quals = QualifierSet(defs)
            self._qual_texts = texts
            self._env_digest = _fingerprint.qualifier_env_digest(self._quals)
        return self._quals

    def load_program(self, path: str, quals: Optional[QualifierSet] = None):
        """Parse and lower one translation unit under this workspace."""
        if quals is None:
            quals = self.qualifier_set()
        with obs.span("parse", unit=path):
            unit = parse_c(
                _read_source(path), qualifier_names=quals.names, filename=path
            )
        with obs.span("lower", unit=path):
            return lower_unit(unit)

    # ------------------------------------------------------- state control

    def invalidate(self, path: Optional[str] = None) -> int:
        """Drop the incremental verdict stores (for one unit path, or
        all of them); returns how many unit entries were dropped."""
        if path is None:
            dropped = len(self._units) + len(self._prove_units)
            self._units.clear()
            self._prove_units.clear()
            return dropped
        keys = [key for key in self._units if key[0] == path]
        for key in keys:
            del self._units[key]
        dropped = len(keys)
        if self._prove_units.pop(path, None) is not None:
            dropped += 1
        return dropped

    def _lru_get(self, store: OrderedDict, key):
        """Fetch from an incremental store, refreshing LRU recency."""
        state = store.get(key)
        if state is not None:
            store.move_to_end(key)
        return state

    def _lru_put(self, store: OrderedDict, key, state) -> None:
        """Insert into an incremental store, evicting the least
        recently used entries past the cap (``units_evicted``)."""
        store[key] = state
        store.move_to_end(key)
        while len(store) > self.max_units:
            store.popitem(last=False)
            self.counters["units_evicted"] += 1
            obs.incr("serve.units_evicted")

    def stats(self) -> dict:
        """Workspace facts, JSON-ready (the serve ``status`` payload
        embeds one of these per live workspace)."""
        return {
            "incremental": self.incremental,
            "config": {
                "quals": list(self.config.quals),
                "no_std": self.config.no_std,
                "trust_constants": self.config.trust_constants,
            },
            "units": len(self._units),
            "prove_units": len(self._prove_units),
            "functions": sum(
                len(state.functions) for state in self._units.values()
            ),
            "counters": dict(self.counters),
        }

    def close(self) -> None:
        """Release resident resources (proof-cache connections)."""
        for cache in self._caches.values():
            cache.close()
        self._caches.clear()

    def __enter__(self) -> "Workspace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------- commands

    def check(
        self, request: CheckRequest, on_result=None, on_event=None
    ) -> Report:
        """Qualifier-check each file as an isolated batch unit.

        Incremental workspaces re-check only the functions whose
        content fingerprint changed since the last request and replay
        stored verdicts for the rest (see the class docstring)."""
        self.counters["requests"] += 1
        quals = self.qualifier_set()
        if self.incremental:
            # The verdict store lives in this process; incremental
            # checks are cheap enough that pool fan-out would cost more
            # than it saves (prove still uses the pool).
            request = replace(request, jobs=1)
            worker = self._incremental_check_worker(request, quals)
        else:
            worker = self._oneshot_check_worker(request, quals)
        batch_report = self._run(
            request,
            worker,
            calibrate=lambda: self._prover_calibration(quals),
            on_result=on_result,
            on_event=on_event,
        )
        _aggregate_dataflow_meta(batch_report)
        if self.incremental:
            _aggregate_incremental_meta(batch_report)
        return Report("check", batch_report)

    def _oneshot_check_worker(self, request: CheckRequest, quals):
        def worker(path: str, deadline: Deadline) -> batch.UnitResult:
            source = _read_source(path)
            with obs.span("parse", unit=path):
                unit = parse_c(
                    source,
                    qualifier_names=quals.names,
                    recover=True,
                    filename=path,
                )
            diagnostics = [_parse_error_dict(e) for e in unit.errors]
            deadline.check("after parse")
            with obs.span("lower", unit=path):
                program = lower_unit(unit)
            checker = QualifierChecker(
                program, quals, flow_sensitive=request.flow_sensitive
            )
            with obs.span("typecheck", unit=path):
                check_report = checker.check()
            diagnostics.extend(
                {**d.to_dict(), "text": str(d)} for d in check_report.diagnostics
            )
            if unit.errors:
                verdict = batch.ERROR
            elif check_report.diagnostics:
                verdict = batch.WARNINGS
            else:
                verdict = batch.OK
            return batch.UnitResult(
                unit=path,
                verdict=verdict,
                diagnostics=diagnostics,
                error=str(unit.errors[0]) if unit.errors else "",
                detail={
                    "warnings": check_report.warning_count,
                    "runtime_checks": len(check_report.runtime_checks),
                    "dataflow": {
                        "functions": check_report.dataflow,
                        "totals": _sum_dataflow(check_report.dataflow),
                    },
                },
            )

        return worker

    def _incremental_check_worker(self, request: CheckRequest, quals):
        env = self._env_digest

        def worker(path: str, deadline: Deadline) -> batch.UnitResult:
            self.counters["units_checked"] += 1
            source = _read_source(path)
            source_digest = _fingerprint.source_digest(source)
            key = (path, request.flow_sensitive)
            state = self._lru_get(self._units, key)
            if (
                state is not None
                and state.source == source_digest
                and state.env == env
            ):
                # Nothing changed: skip even the parse.
                self.counters["units_replayed"] += 1
                self.counters["functions_replayed"] += len(state.functions)
                obs.incr("serve.incremental_hits", len(state.functions))
                return self._replay_unit(path, state, unit_replayed=True)
            with obs.span("parse", unit=path):
                unit = parse_c(
                    source,
                    qualifier_names=quals.names,
                    recover=True,
                    filename=path,
                )
            deadline.check("after parse")
            with obs.span("lower", unit=path):
                program = lower_unit(unit)
            if unit.errors:
                # Broken units are checked in full and never cached:
                # panic-mode recovery can attribute diagnostics across
                # function boundaries, so replay would not be sound.
                self._units.pop(key, None)
                return self._broken_unit_result(path, unit, program, quals, request)
            fingerprints = _fingerprint.unit_function_fingerprints(
                program, env, flow_sensitive=request.flow_sensitive
            )
            old = (
                state.functions
                if state is not None and state.env == env
                else {}
            )
            changed = {
                name
                for name, digest in fingerprints.items()
                if name not in old or old[name].fingerprint != digest
            }
            checker = QualifierChecker(
                program, quals, flow_sensitive=request.flow_sensitive
            )
            with obs.span("typecheck", unit=path, incremental=True):
                check_report = checker.check(functions=changed)
            per_diag: Dict[str, List[dict]] = {}
            for diag in check_report.diagnostics:
                entry = {**diag.to_dict(), "text": str(diag)}
                per_diag.setdefault(diag.function, []).append(entry)
            per_rtc: Dict[str, int] = {}
            for rtc in check_report.runtime_checks:
                per_rtc[rtc.function] = per_rtc.get(rtc.function, 0) + 1
            records: Dict[str, _FunctionRecord] = {}
            for func in program.functions:  # program order = report order
                name = func.name
                if name in changed:
                    records[name] = _FunctionRecord(
                        fingerprint=fingerprints[name],
                        diagnostics=per_diag.get(name, []),
                        runtime_checks=per_rtc.get(name, 0),
                        dataflow=check_report.dataflow.get(name, {}),
                    )
                else:
                    records[name] = old[name]
            replayed = len(records) - len(changed)
            self.counters["functions_checked"] += len(changed)
            self.counters["functions_replayed"] += replayed
            obs.incr("serve.incremental_hits", replayed)
            new_state = _UnitState(
                source=source_digest, env=env, functions=records
            )
            self._lru_put(self._units, key, new_state)
            return self._replay_unit(
                path, new_state, unit_replayed=False, rechecked=len(changed)
            )

        return worker

    def _replay_unit(
        self,
        path: str,
        state: _UnitState,
        unit_replayed: bool,
        rechecked: int = 0,
    ) -> batch.UnitResult:
        """Assemble a unit's result by merging per-function records
        (freshly checked and replayed alike) in program order."""
        diagnostics: List[dict] = []
        runtime_checks = 0
        dataflow: Dict[str, dict] = {}
        for name, record in state.functions.items():
            diagnostics.extend(record.diagnostics)
            runtime_checks += record.runtime_checks
            if record.dataflow:
                dataflow[name] = record.dataflow
        warnings = sum(
            1 for d in diagnostics if d.get("severity") == "warning"
        )
        total = len(state.functions)
        return batch.UnitResult(
            unit=path,
            verdict=batch.WARNINGS if diagnostics else batch.OK,
            diagnostics=diagnostics,
            detail={
                "warnings": warnings,
                "runtime_checks": runtime_checks,
                "dataflow": {
                    "functions": dataflow,
                    "totals": _sum_dataflow(dataflow),
                },
                "incremental": {
                    "functions": total,
                    "rechecked": rechecked,
                    "replayed": total - rechecked,
                    "unit_replayed": unit_replayed,
                },
            },
        )

    def _broken_unit_result(
        self, path, unit, program, quals, request: CheckRequest
    ) -> batch.UnitResult:
        """Full (non-incremental) check of a unit with parse errors."""
        diagnostics = [_parse_error_dict(e) for e in unit.errors]
        checker = QualifierChecker(
            program, quals, flow_sensitive=request.flow_sensitive
        )
        with obs.span("typecheck", unit=path):
            check_report = checker.check()
        diagnostics.extend(
            {**d.to_dict(), "text": str(d)} for d in check_report.diagnostics
        )
        self.counters["functions_checked"] += len(program.functions)
        return batch.UnitResult(
            unit=path,
            verdict=batch.ERROR,
            diagnostics=diagnostics,
            error=str(unit.errors[0]),
            detail={
                "warnings": check_report.warning_count,
                "runtime_checks": len(check_report.runtime_checks),
                "dataflow": {
                    "functions": check_report.dataflow,
                    "totals": _sum_dataflow(check_report.dataflow),
                },
                "incremental": {
                    "functions": len(program.functions),
                    "rechecked": len(program.functions),
                    "replayed": 0,
                    "unit_replayed": False,
                    "disabled": "parse errors",
                },
            },
        )

    def _prover_calibration(self, quals: QualifierSet) -> None:
        """Profiling-only prover pass for ``check`` invocations.

        ``check`` itself never runs the prover (soundness of the rules
        is ``prove``'s job), so a profiled check of a C file would show
        empty prover numbers even when the session loads custom
        qualifier definitions whose proof burden the user cares about.
        When profiling is active and custom ``--quals`` files are
        loaded, this times one soundness pass over those definitions so
        the ``timings.prover`` block reflects their real cost.  Results
        are discarded; verdicts, diagnostics, and exit codes are
        untouched, and nothing runs when profiling is off.
        """
        defs: List[QualifierDef] = []
        for path in self.config.quals:
            try:
                defs.extend(parse_qualifiers(_read_source(path)))
            except Exception:
                return
        if not defs:
            return
        with obs.span("prove", calibration=True):
            for qdef in defs:
                try:
                    check_soundness(qdef, quals, time_limit=5.0, cache=None)
                except Exception:
                    continue

    def _proof_cache(self, request: ProveRequest) -> Optional[ProofCache]:
        """The resident proof cache a prove request should run against
        (``None`` when caching is off).  The request's explicit
        settings win over the configuration's defaults; caches stay
        open for the workspace's lifetime so a warm daemon keeps its
        in-memory LRU across requests."""
        if not (request.cache and self.config.cache):
            return None
        cache_dir = (
            request.cache_dir
            if request.cache_dir != DEFAULT_CACHE_DIR
            else self.config.cache_dir
        )
        cache = self._caches.get(cache_dir)
        if cache is None:
            cache = ProofCache(cache_dir=cache_dir)
            self._caches[cache_dir] = cache
        return cache

    def _session_pool_for(self, request: ProveRequest):
        """The workspace-resident prover session pool (lazy), so a warm
        daemon keeps learned solver state across prove requests.
        ``None`` when the request opted out (``--no-session``)."""
        if not request.session:
            return None
        if self._session_pool is None:
            from repro.prover.session import SessionPool

            self._session_pool = SessionPool()
        return self._session_pool

    def prove(
        self, request: ProveRequest, on_result=None, on_event=None
    ) -> Report:
        """Soundness-check every qualifier defined in each ``.qual``
        unit, consulting the content-addressed proof cache before any
        prover work and recording settled verdicts back into it.

        With ``jobs > 1`` (and ``shard`` left on) the obligation stream
        is sharded across the worker pool instead of whole files; an
        incremental workspace additionally replays a unit's stored
        report when neither its source nor the prove environment
        changed.  Neither mode changes any verdict (the CI identity
        stage asserts this)."""
        self.counters["requests"] += 1
        retry = RetryPolicy(max_attempts=request.retries + 1)
        cache = self._proof_cache(request)
        if request.shard and request.jobs > 1:
            return self._prove_sharded(
                request, retry, cache, on_result, on_event
            )
        pool = self._session_pool_for(request)
        # Cross-request single-flight only makes sense in the process
        # that owns the table; a forked pool child would wait on a
        # copied snapshot.  Incremental workspaces always run the
        # worker in-process (jobs is forced to 1 below), so they keep
        # the table either way.
        dedup = (
            self.dedup if (request.jobs <= 1 or self.incremental) else None
        )
        worker = self._prove_unit_worker(request, retry, cache, pool, dedup)
        if self.incremental:
            # The replay store lives in this process (same reasoning as
            # incremental check); sharded mode keeps ``jobs`` because
            # its store is consulted in the parent anyway.
            request = replace(request, jobs=1)
            worker = self._incremental_prove_wrapper(request, worker)
        batch_report = self._run(
            request, worker, on_result=on_result, on_event=on_event
        )
        self._finish_prove_meta(batch_report, request, cache)
        return Report("prove", batch_report)

    def _prove_unit_worker(
        self, request: ProveRequest, retry: RetryPolicy, cache, pool,
        dedup=None,
    ):
        def worker(path: str, deadline: Deadline) -> batch.UnitResult:
            before = cache.snapshot() if cache is not None else None
            sessions_before = pool.counters() if pool is not None else None
            with obs.span("parse_quals", unit=path):
                defs = parse_qualifiers(_read_source(path))
            quals = QualifierSet(
                list(standard_qualifiers())
                + [d for d in defs if d.name not in standard_qualifiers().names]
            )
            verdicts = [batch.OK]
            summaries: List[dict] = []
            for qdef in defs:
                if request.qualifier and qdef.name != request.qualifier:
                    continue
                def stream_obligation(res, _qname=qdef.name):
                    # One progress event per settled obligation: the
                    # pool forwards it to the parent over the result
                    # pipe; a sequential run hands it to ``on_event``.
                    batch.emit_progress(
                        {
                            "event": "obligation",
                            "unit": path,
                            "qualifier": _qname,
                            "rule": res.obligation.rule,
                            "verdict": res.verdict,
                        }
                    )

                with obs.span("prove", qualifier=qdef.name):
                    report = check_soundness(
                        qdef,
                        quals,
                        time_limit=request.time_limit,
                        retry=retry,
                        deadline=deadline,
                        cache=cache,
                        on_result=stream_obligation,
                        sessions=pool,
                        explain=request.explain,
                        dedup=dedup,
                    )
                entry = report.to_dict()
                entry["summary"] = report.summary()
                summaries.append(entry)
                verdicts.extend(_obligation_verdicts(report.results))
            detail: dict = {"qualifiers": summaries}
            if pool is not None:
                # Per-unit session counter delta (additive key), shaped
                # exactly like the sharded path's per-group counters.
                after = pool.counters()
                detail["sessions"] = {
                    key: value - (sessions_before.get(key) or 0)
                    for key, value in after.items()
                    if isinstance(value, (int, float))
                }
            if cache is not None:
                # Per-unit counter delta: crosses the process-pool
                # boundary inside the UnitResult, and is folded into
                # the store's lifetime totals here (in whichever
                # process ran the unit).
                delta = cache.delta(before)
                cache.flush_counters(delta)
                detail["cache"] = delta
            return batch.UnitResult(
                unit=path,
                verdict=_worst(verdicts),
                detail=detail,
            )

        return worker

    # ------------------------------------------- prove replay (incremental)

    def _prove_env_digest(self, request: ProveRequest) -> str:
        """The prove-environment digest every stored prove report is
        keyed under (the unit's own definitions are covered by its
        source digest, so only request-level inputs appear here)."""
        from repro.core.soundness.axioms import semantics_axioms

        return _fingerprint.prove_environment_digest(
            semantics_axioms(),
            standard_qualifiers(),
            request.time_limit,
            request.retries,
            request.qualifier,
        )

    def _prove_replay(self, path: str, source_digest: str, env: str):
        """The stored prove result for an unchanged unit, or ``None``.
        A hit returns a fresh :class:`batch.UnitResult` carrying an
        ``incremental`` detail block (never the stored object itself —
        callers stamp ``elapsed`` on what they get back)."""
        state = self._lru_get(self._prove_units, path)
        if (
            state is None
            or state.source != source_digest
            or state.env != env
        ):
            return None
        self.counters["prove_units_replayed"] += 1
        self.counters["obligations_replayed"] += state.obligations
        obs.incr("serve.prove_replays")
        obs.incr("serve.incremental_hits", state.obligations)
        stored = state.result
        return batch.UnitResult(
            unit=stored.unit,
            verdict=stored.verdict,
            diagnostics=list(stored.diagnostics),
            error=stored.error,
            detail={
                **stored.detail,
                "incremental": {
                    "obligations": state.obligations,
                    "rechecked": 0,
                    "replayed": state.obligations,
                    "unit_replayed": True,
                },
            },
        )

    def _store_prove_state(
        self,
        path: str,
        source_digest: str,
        env: str,
        result: batch.UnitResult,
    ) -> None:
        """Record a freshly-computed prove result for later replay and
        attach its ``incremental`` detail block.  Only settled reports
        (OK/WARNINGS) are stored: TIMEOUT/GAVE_UP/CRASH outcomes are
        budget- or environment-transient and must be recomputed."""
        total = 0
        cached = 0
        for entry in result.detail.get("qualifiers", ()):
            for obligation in entry.get("obligations", ()):
                total += 1
                if obligation.get("cached"):
                    cached += 1
        self.counters["obligations_proved"] += total - cached
        self.counters["obligations_replayed"] += cached
        if result.verdict in (batch.OK, batch.WARNINGS):
            stored_detail = {
                key: value
                for key, value in result.detail.items()
                if key not in ("cache", "sessions", "incremental")
            }
            self._lru_put(
                self._prove_units,
                path,
                _ProveUnitState(
                    source=source_digest,
                    env=env,
                    obligations=total,
                    result=batch.UnitResult(
                        unit=result.unit,
                        verdict=result.verdict,
                        diagnostics=list(result.diagnostics),
                        error=result.error,
                        detail=stored_detail,
                    ),
                ),
            )
        result.detail["incremental"] = {
            "obligations": total,
            "rechecked": total - cached,
            "replayed": cached,
            "unit_replayed": False,
        }

    def _incremental_prove_wrapper(self, request: ProveRequest, inner):
        env = self._prove_env_digest(request)

        def worker(path: str, deadline: Deadline) -> batch.UnitResult:
            self.counters["prove_units"] += 1
            source_digest = _fingerprint.source_digest(_read_source(path))
            replayed = self._prove_replay(path, source_digest, env)
            if replayed is not None:
                return replayed
            result = inner(path, deadline)
            self._store_prove_state(path, source_digest, env, result)
            return result

        return worker

    # --------------------------------------------------- sharded prove path

    def _prove_sharded(
        self, request: ProveRequest, retry: RetryPolicy, cache,
        on_result, on_event,
    ) -> Report:
        """Obligation-level fan-out: generate every unit's work items in
        the parent, shard them across the pool grouped by environment
        digest (one prover session per group), and re-assemble per-unit
        reports shaped exactly like the serial path's (see
        docs/architecture.md, "obligation lifecycle").

        Differences from the serial path are additive-only: per-unit
        ``cache``/``sessions`` detail deltas are reported at run level
        instead (group work cannot be attributed to one unit), and
        ``unit_timeout`` bounds each obligation *group* rather than
        each file."""
        from repro.core.soundness import workitems
        from repro.core.soundness.axioms import semantics_axioms
        from repro.harness import shard as _shard

        prof = _start_profile(request)
        start = time.perf_counter()
        try:
            axioms = semantics_axioms()
            std = standard_qualifiers()
            env = self._prove_env_digest(request) if self.incremental else ""
            staged: Dict[str, tuple] = {}

            def parse_worker(path: str, deadline: Deadline) -> batch.UnitResult:
                source = _read_source(path)
                with obs.span("parse_quals", unit=path):
                    defs = parse_qualifiers(source)
                quals = QualifierSet(
                    list(std) + [d for d in defs if d.name not in std.names]
                )
                staged[path] = (source, defs, quals)
                return batch.UnitResult(unit=path, verdict=batch.OK)

            results_by_path: Dict[str, batch.UnitResult] = {}
            prove_plan: Dict[str, tuple] = {}
            all_items: List[workitems.ObligationWorkItem] = []
            skip_rest = False
            for path in request.files:
                if skip_rest:
                    results_by_path[path] = batch.UnitResult(
                        unit=path, verdict=batch.SKIPPED
                    )
                    continue
                if self.incremental:
                    self.counters["prove_units"] += 1
                    try:
                        source_digest = _fingerprint.source_digest(
                            _read_source(path)
                        )
                    except Exception:
                        source_digest = None
                    if source_digest is not None:
                        replayed = self._prove_replay(path, source_digest, env)
                        if replayed is not None:
                            results_by_path[path] = replayed
                            continue
                # run_one supplies the exact parse-stage fault taxonomy
                # of the serial path (input error -> ERROR, etc.).
                parse_result = batch.run_one(
                    path, parse_worker, request.unit_timeout
                )
                if path not in staged:
                    results_by_path[path] = parse_result
                    if (
                        not request.keep_going
                        and parse_result.severity
                        >= batch._SEVERITY[batch.ERROR]
                    ):
                        skip_rest = True
                    continue
                source, defs, quals = staged[path]
                per_qdef = []
                for qdef in defs:
                    if request.qualifier and qdef.name != request.qualifier:
                        continue
                    items = workitems.generate_work_items(
                        qdef, quals, axioms, unit=path
                    )
                    per_qdef.append((qdef, items))
                    all_items.extend(items)
                prove_plan[path] = (source, quals, per_qdef)

            def forward(event) -> None:
                if on_event is None:
                    return
                if isinstance(event, dict) and event.get("event") != "obligation":
                    # The pool's lifecycle events name synthetic
                    # ``obl:*`` units; only obligation progress makes
                    # sense to a prove caller.
                    return
                on_event(event)

            outcomes, stats = _shard.run_obligations(
                all_items,
                axioms,
                use_sessions=request.session,
                jobs=request.jobs,
                unit_timeout=request.unit_timeout,
                time_limit=request.time_limit,
                retry=retry,
                cache=cache,
                on_event=forward,
                explain=request.explain,
            )

            for path, (source, quals, per_qdef) in prove_plan.items():
                verdicts = [batch.OK]
                summaries: List[dict] = []
                unit_elapsed = 0.0
                for qdef, items in per_qdef:
                    q_elapsed = sum(
                        (outcomes[i.key].get("proof") or {}).get("elapsed", 0.0)
                        for i in items
                    )
                    unit_elapsed += q_elapsed
                    qreport = workitems.assemble_report(
                        qdef, quals, items, outcomes, elapsed=q_elapsed
                    )
                    entry = qreport.to_dict()
                    entry["summary"] = qreport.summary()
                    summaries.append(entry)
                    verdicts.extend(_obligation_verdicts(qreport.results))
                result = batch.UnitResult(
                    unit=path,
                    verdict=_worst(verdicts),
                    elapsed=unit_elapsed,
                    detail={"qualifiers": summaries},
                )
                if self.incremental:
                    self._store_prove_state(
                        path, _fingerprint.source_digest(source), env, result
                    )
                results_by_path[path] = result

            results = [results_by_path[p] for p in request.files]
            if not request.keep_going:
                severe = False
                for index, result in enumerate(results):
                    if severe:
                        results[index] = batch.UnitResult(
                            unit=result.unit, verdict=batch.SKIPPED
                        )
                    elif result.severity >= batch._SEVERITY[batch.ERROR]:
                        severe = True
            batch_report = batch.BatchReport(results=results)
            batch_report.elapsed = time.perf_counter() - start
            if on_result is not None:
                for result in results:
                    try:
                        on_result(result)
                    except Exception:
                        pass
            if cache is not None:
                batch_report.meta["cache"] = {
                    "enabled": True,
                    "dir": cache.cache_dir,
                    "entries": cache.entry_count(),
                    **(stats.get("cache") or {}),
                }
            else:
                batch_report.meta["cache"] = {"enabled": False}
            if request.session:
                sessions = stats.get("sessions") or {}
                batch_report.meta["sessions"] = {"enabled": True, **sessions}
                self.counters["session_reuse"] += int(
                    sessions.get("session_reuse", 0)
                )
            batch_report.meta["scheduler"] = {
                key: stats.get(key, 0)
                for key in (
                    "groups", "rounds", "obligations", "requeued",
                    "quarantined",
                )
            }
            if self.incremental:
                _aggregate_prove_incremental_meta(batch_report)
        except BaseException:
            _abort_profile(prof)
            raise
        _finish_profile(prof, batch_report)
        return Report("prove", batch_report)

    def _finish_prove_meta(
        self, batch_report: batch.BatchReport, request: ProveRequest, cache
    ) -> None:
        """Run-level meta for the serial prove path (the sharded path
        builds the same keys from its scheduler stats)."""
        if cache is not None:
            batch_report.meta["cache"] = {
                "enabled": True,
                "dir": cache.cache_dir,
                "entries": cache.entry_count(),
                **batch_report.sum_detail_counters("cache"),
            }
        else:
            batch_report.meta["cache"] = {"enabled": False}
        if request.session:
            sessions = batch_report.sum_detail_counters("sessions")
            batch_report.meta["sessions"] = {"enabled": True, **sessions}
            self.counters["session_reuse"] += int(
                sessions.get("session_reuse", 0)
            )
        if self.incremental:
            _aggregate_prove_incremental_meta(batch_report)

    def infer(
        self, request: InferRequest, on_result=None, on_event=None
    ) -> Report:
        """Infer annotations for one qualifier over each file."""
        self.counters["requests"] += 1
        quals = self.qualifier_set()
        qdef = quals.get(request.qualifier)
        if qdef is None:
            raise UnknownQualifierError(
                f"unknown qualifier {request.qualifier!r}"
            )

        def worker(path: str, deadline: Deadline) -> batch.UnitResult:
            from repro.analysis.infer import infer_value_qualifier

            program = self.load_program(path, quals)
            with obs.span("infer", unit=path, qualifier=request.qualifier):
                result = infer_value_qualifier(
                    program, qdef, quals, flow_sensitive=request.flow_sensitive
                )
            return batch.UnitResult(
                unit=path,
                verdict=batch.OK,
                detail={
                    "summary": result.summary(),
                    "entities": sorted(str(e) for e in result.inferred),
                    "dataflow": {
                        "functions": result.dataflow,
                        "totals": _sum_dataflow(result.dataflow),
                    },
                },
            )

        batch_report = self._run(
            request, worker, on_result=on_result, on_event=on_event
        )
        _aggregate_dataflow_meta(batch_report)
        return Report("infer", batch_report)

    def difftest(
        self, request: DifftestRequest, on_result=None, on_event=None
    ) -> Report:
        """Differentially test the pipeline on generated cases.

        Every case runs through four oracles (prover vs. brute-force
        enumeration, native vs. instrumented execution, metamorphic
        prover invariance, forest vs. ddmin conflict cores); any
        disagreement makes the unit
        ``WARNINGS`` (exit 1) and drops a minimized, replayable
        artifact under ``request.out_dir``.
        """
        from repro.difftest import runner as difftest_runner
        from repro.difftest.generator import generate_case

        self.counters["requests"] += 1
        out_dir = request.out_dir or difftest_runner.ARTIFACT_DIR
        budget = Deadline.after(request.budget)

        def run_outcome(unit: str, outcome) -> batch.UnitResult:
            artifacts = []
            for finding in outcome.findings:
                with obs.span("minimize", case=str(outcome.case)):
                    minimized = difftest_runner.minimize_finding(
                        outcome.case, finding, time_limit=request.time_limit
                    )
                artifacts.append(
                    difftest_runner.write_artifact(
                        out_dir, outcome.case, finding, minimized
                    )
                )
            return batch.UnitResult(
                unit=unit,
                verdict=batch.WARNINGS if outcome.findings else batch.OK,
                diagnostics=[
                    {
                        **f.to_dict(),
                        "text": f"{f.oracle}: {f.kind} in {f.case}",
                    }
                    for f in outcome.findings
                ],
                detail={
                    "findings": len(outcome.findings),
                    "artifacts": artifacts,
                    "counters": outcome.counters,
                },
            )

        if request.replay:
            units: Tuple[str, ...] = request.replay

            def worker(path: str, deadline: Deadline) -> batch.UnitResult:
                outcome = difftest_runner.replay_artifact(
                    path, time_limit=request.time_limit
                )
                return run_outcome(path, outcome)

        else:
            units = tuple(
                f"case-{index:05d}" for index in range(request.count)
            )

            def worker(name: str, deadline: Deadline) -> batch.UnitResult:
                if budget.expired():
                    return batch.UnitResult(
                        unit=name,
                        verdict=batch.OK,
                        detail={"skipped": "budget exhausted"},
                    )
                index = int(name.rsplit("-", 1)[1])
                case = generate_case(request.seed, index)
                outcome = difftest_runner.run_case(
                    case, time_limit=request.time_limit
                )
                return run_outcome(name, outcome)

        batch_report = self._run(
            request, worker, units=units, on_result=on_result, on_event=on_event
        )
        counters: Dict[str, int] = {}
        artifacts: List[str] = []
        skipped = 0
        findings = 0
        for result in batch_report.results:
            findings += result.detail.get("findings", 0)
            artifacts.extend(result.detail.get("artifacts", ()))
            if "skipped" in result.detail:
                skipped += 1
            for key, value in result.detail.get("counters", {}).items():
                counters[key] = counters.get(key, 0) + value
        batch_report.meta["difftest"] = {
            "seed": request.seed,
            "count": len(units),
            "budget": request.budget,
            "time_limit": request.time_limit,
            "out_dir": out_dir,
            "replay": bool(request.replay),
            "findings": findings,
            "artifacts": artifacts,
            "cases_skipped_budget": skipped,
            "counters": counters,
        }
        return Report("difftest", batch_report)

    def run(self, path: str, entry: str = "main", args=()) -> Tuple[int, List[str]]:
        """Execute one translation unit with run-time qualifier checks;
        returns ``(exit_value, printf_output)``."""
        quals = self.qualifier_set()
        program = self.load_program(path, quals)
        return run_program(program, quals=quals, entry=entry, args=list(args))

    def show_ir(self, path: str) -> str:
        """The lowered CIL-style IR of one unit, rendered as C."""
        return program_to_c(self.load_program(path))

    # ----------------------------------------------------------- internals

    def _run(
        self,
        request: BatchOptions,
        worker,
        units: Optional[Sequence[str]] = None,
        calibrate=None,
        on_result=None,
        on_event=None,
    ) -> batch.BatchReport:
        """Run the batch, bracketed by the profiling lifecycle: start a
        slice, run (and optionally calibrate), attach ``timings`` meta,
        restore collector state — including on the error path.

        ``on_result``/``on_event`` stream settled units and
        per-obligation progress events to the caller as they happen
        (the CLI's ``--format jsonl`` sits on ``on_result``)."""
        prof = _start_profile(request)
        try:
            report = batch.run_units(
                request.files if units is None else units,
                worker,
                keep_going=request.keep_going,
                jobs=request.jobs,
                unit_timeout=request.unit_timeout,
                on_result=on_result,
                on_event=on_event,
            )
            if calibrate is not None and prof is not None:
                calibrate()
        except BaseException:
            _abort_profile(prof)
            raise
        _finish_profile(prof, report)
        return report


# ------------------------------------------------------------------ session


@dataclass(frozen=True)
class Session:
    """The original one-shot facade, kept as a thin deprecated alias.

    .. deprecated::
       Every command builds a fresh one-shot :class:`Workspace` from
       this session's fields and forwards to it, so existing callers
       (and the golden payload tests) behave exactly as before.  New
       code should use :class:`SessionConfig` + :class:`Workspace`,
       which add resident caches and function-granularity incremental
       re-checking; ``Session`` will not grow new capabilities.
    """

    quals: Tuple[str, ...] = ()
    no_std: bool = False
    trust_constants: bool = False

    def config(self) -> SessionConfig:
        """The immutable configuration equivalent of this session."""
        return SessionConfig(
            quals=self.quals,
            no_std=self.no_std,
            trust_constants=self.trust_constants,
        )

    def _workspace(self) -> Workspace:
        return Workspace(self.config(), incremental=False)

    # ------------------------------------------------------------ loading

    def qualifier_set(self) -> QualifierSet:
        """The composed qualifier set for this session."""
        return self.config().qualifier_set()

    def load_program(self, path: str, quals: Optional[QualifierSet] = None):
        """Parse and lower one translation unit under this session."""
        return self._workspace().load_program(path, quals)

    # ----------------------------------------------------------- commands

    def check(
        self, request: CheckRequest, on_result=None, on_event=None
    ) -> Report:
        """Qualifier-check each file as an isolated batch unit."""
        with self._workspace() as ws:
            return ws.check(request, on_result=on_result, on_event=on_event)

    def prove(
        self, request: ProveRequest, on_result=None, on_event=None
    ) -> Report:
        """Soundness-check every qualifier defined in each ``.qual``
        unit (see :meth:`Workspace.prove`)."""
        with self._workspace() as ws:
            return ws.prove(request, on_result=on_result, on_event=on_event)

    def infer(
        self, request: InferRequest, on_result=None, on_event=None
    ) -> Report:
        """Infer annotations for one qualifier over each file."""
        with self._workspace() as ws:
            return ws.infer(request, on_result=on_result, on_event=on_event)

    def difftest(
        self, request: DifftestRequest, on_result=None, on_event=None
    ) -> Report:
        """Differentially test the pipeline on generated cases."""
        with self._workspace() as ws:
            return ws.difftest(request, on_result=on_result, on_event=on_event)

    def run(self, path: str, entry: str = "main", args=()) -> Tuple[int, List[str]]:
        """Execute one translation unit with run-time qualifier checks;
        returns ``(exit_value, printf_output)``."""
        with self._workspace() as ws:
            return ws.run(path, entry=entry, args=args)

    def show_ir(self, path: str) -> str:
        """The lowered CIL-style IR of one unit, rendered as C."""
        with self._workspace() as ws:
            return ws.show_ir(path)


# -------------------------------------------------------- cache management


def cache_stats(cache_dir: str = DEFAULT_CACHE_DIR) -> dict:
    """Facts about the on-disk proof cache, JSON-ready (the payload of
    ``python -m repro cache stats --format json``).

    A cache directory that was never created is reported as-is (zero
    entries, zero counters) — asking for stats must not create it.
    """
    import os

    from repro.cache.store import COUNTER_NAMES

    if cache_dir is not None and not os.path.isdir(cache_dir):
        return {
            "schema_version": SCHEMA_VERSION,
            "command": "cache-stats",
            "version": _tool_version(),
            "path": os.path.join(cache_dir, "proofs.sqlite"),
            "disk": False,
            "entries": 0,
            "size_bytes": 0,
            "lifetime": {name: 0 for name in COUNTER_NAMES},
        }
    with ProofCache(cache_dir=cache_dir) as cache:
        entries = cache.entry_count()
        return {
            "schema_version": SCHEMA_VERSION,
            "command": "cache-stats",
            "version": _tool_version(),
            "path": cache.path,
            "disk": cache.disk_available,
            "entries": entries,
            "size_bytes": cache.size_bytes(),
            "lifetime": cache.lifetime_counters(),
        }


def cache_clear(cache_dir: str = DEFAULT_CACHE_DIR) -> int:
    """Drop every cached proof; returns the number of entries removed."""
    with ProofCache(cache_dir=cache_dir) as cache:
        return cache.clear()
