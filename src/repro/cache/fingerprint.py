"""Canonical fingerprints for proof obligations.

A cache entry is addressed by *content*, never by file name or rule
position: two keys identify it —

* the **obligation key**: a SHA-256 over a canonical S-expression
  rendering of the goal formula plus any per-obligation extra axioms.
  Renaming a ``.qual`` file or reordering its clauses leaves the key
  unchanged; editing a predicate, an invariant, or a referenced
  qualifier's definition (whose invariant is inlined into the goal)
  changes it.
* the **environment key**: a SHA-256 over the prover's axiom set, an
  arbitrary context string (the soundness checker passes the qualifier
  definition's normalized source text), and the prover version salt.
  Bumping the salt, changing the dynamic-semantics axioms, or editing
  the definition text invalidates every entry proved under the old
  environment — those entries are detected as *stale* and purged.

The canonical rendering is a deliberate, versioned format (not
``repr``/``pickle``): every constructor of the term/formula language is
spelled out below, including quantifier triggers, which affect what the
prover can prove and therefore belong in the identity.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, NamedTuple

from repro.prover.terms import (
    And,
    Eq,
    Exists,
    FFalse,
    ForAll,
    Formula,
    FTrue,
    Iff,
    Implies,
    Le,
    Lt,
    Not,
    Or,
    Pr,
    TApp,
    Term,
    TInt,
    TVar,
)

#: Salt mixed into every environment key.  Bump the trailing integer
#: whenever the prover's search behaviour changes in a way that could
#: flip a verdict (new lemma schemas, different instantiation strategy,
#: fixed unsoundness) — every cached result proved by the old prover
#: then reads as stale instead of being trusted.
PROVER_SALT = "repro-prover/1"


class ProofKey(NamedTuple):
    """The two-part content address of one proof obligation."""

    obligation: str  # hex digest of the goal (+ extra axioms)
    environment: str  # hex digest of (axioms, context, salt)

    def __str__(self) -> str:
        return f"{self.obligation[:12]}@{self.environment[:12]}"


# ------------------------------------------------------- canonical rendering


def canonical_term(t: Term) -> str:
    if isinstance(t, TVar):
        return f"(v {t.name})"
    if isinstance(t, TInt):
        return f"(i {t.value})"
    if isinstance(t, TApp):
        if not t.args:
            return f"(a {t.fname})"
        args = " ".join(canonical_term(a) for a in t.args)
        return f"(a {t.fname} {args})"
    raise TypeError(f"unknown term {t!r}")


def canonical_formula(f: Formula) -> str:
    if isinstance(f, FTrue):
        return "(true)"
    if isinstance(f, FFalse):
        return "(false)"
    if isinstance(f, Eq):
        return f"(= {canonical_term(f.left)} {canonical_term(f.right)})"
    if isinstance(f, Le):
        return f"(<= {canonical_term(f.left)} {canonical_term(f.right)})"
    if isinstance(f, Lt):
        return f"(< {canonical_term(f.left)} {canonical_term(f.right)})"
    if isinstance(f, Pr):
        args = " ".join(canonical_term(a) for a in f.args)
        return f"(pr {f.name} {args})"
    if isinstance(f, Not):
        return f"(not {canonical_formula(f.operand)})"
    if isinstance(f, And):
        return "(and " + " ".join(canonical_formula(c) for c in f.conjuncts) + ")"
    if isinstance(f, Or):
        return "(or " + " ".join(canonical_formula(d) for d in f.disjuncts) + ")"
    if isinstance(f, Implies):
        return f"(=> {canonical_formula(f.left)} {canonical_formula(f.right)})"
    if isinstance(f, Iff):
        return f"(<=> {canonical_formula(f.left)} {canonical_formula(f.right)})"
    if isinstance(f, ForAll):
        trig = " ".join(
            "(trigger " + " ".join(canonical_term(p) for p in pattern) + ")"
            for pattern in f.triggers
        )
        return (
            f"(forall ({' '.join(f.vars)}) "
            + (f"{trig} " if trig else "")
            + canonical_formula(f.body)
            + ")"
        )
    if isinstance(f, Exists):
        return f"(exists ({' '.join(f.vars)}) {canonical_formula(f.body)})"
    raise TypeError(f"unknown formula {f!r}")


# ------------------------------------------------------------------ hashing


def _digest(parts: Iterable[str]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")  # unambiguous part separator
    return h.hexdigest()


def obligation_key(goal: Formula, extra_axioms: Iterable[Formula] = ()) -> str:
    """Content hash of one obligation: the goal and its local axioms."""
    return _digest(
        ["goal", canonical_formula(goal)]
        + [canonical_formula(ax) for ax in extra_axioms]
    )


def environment_key(
    axioms: Iterable[Formula], context: str = "", salt: str = PROVER_SALT
) -> str:
    """Content hash of everything an obligation is proved *under*."""
    return _digest(
        ["env", salt, context] + [canonical_formula(ax) for ax in axioms]
    )


def proof_key(
    goal: Formula,
    axioms: Iterable[Formula],
    extra_axioms: Iterable[Formula] = (),
    context: str = "",
    salt: str = PROVER_SALT,
) -> ProofKey:
    """The full two-part cache key for one proof attempt."""
    return ProofKey(
        obligation=obligation_key(goal, extra_axioms),
        environment=environment_key(axioms, context=context, salt=salt),
    )


# ------------------------------------------------- function granularity
#
# Obligation keys address *prover* work; the fingerprints below address
# *checker* work at function granularity, so a warm workspace (see
# ``repro.api.Workspace`` and ``repro serve``) can re-check only the
# functions an edit actually touched and replay the cached per-function
# verdicts for everything else.
#
# A function's fingerprint covers everything its check verdict depends
# on:
#
# * its own lowered body, rendered canonically (so whitespace and
#   comment edits in the original source change nothing);
# * the *interface digest* of its translation unit — every declared
#   signature, struct/union layout, and global type.  This is a sound
#   over-approximation of "referenced definitions": editing a function
#   body invalidates only that function, while editing any signature or
#   type invalidates the whole unit;
# * the *qualifier environment digest* — the normalized source text of
#   every loaded qualifier definition (the checker's axiom
#   environment), so editing a ``.qual`` file re-checks everything;
# * the checker mode flags that change what is reported
#   (``flow_sensitive``).
#
# Source locations are deliberately **excluded**: an edit that only
# shifts later functions down the file replays their verdicts
# unchanged.  Replayed diagnostics therefore carry the spans recorded
# when the function was last checked (see docs/serve.md).

#: Salt mixed into every function fingerprint.  Bump when the checker's
#: behaviour changes in a way that could alter a verdict, so warm
#: workspaces re-check instead of replaying stale verdicts.
CHECKER_SALT = "repro-checker/1"


def prove_environment_digest(
    axioms: Iterable[Formula],
    quals,
    time_limit: float,
    retries: int,
    qualifier: "str | None" = None,
) -> str:
    """Content hash of everything a unit's *prove report* depends on
    beyond its own source text: the dynamic-semantics axioms, the
    composed qualifier environment (standard definitions can shadow or
    be shadowed), the proof budgets (they can flip ``GAVE_UP`` /
    ``TIMEOUT`` verdicts), and the ``--qualifier`` filter.  A warm
    workspace replays a unit's stored prove report only while this
    digest and the unit's source digest both match."""
    return _digest(
        [
            "proveenv",
            PROVER_SALT,
            qualifier_env_digest(quals),
            f"limit={time_limit!r}",
            f"retries={retries}",
            f"only={qualifier or ''}",
        ]
        + [canonical_formula(ax) for ax in axioms]
    )


def source_digest(text: str) -> str:
    """Content hash of one translation unit's raw source text (the
    cheapest whole-unit change test — a match skips even the parse)."""
    return _digest(["src", CHECKER_SALT, text])


def qualifier_env_digest(quals) -> str:
    """Content hash of a composed qualifier set — the checker's axiom
    environment.  Order-insensitive over the *composed* set: what
    matters is which definitions won, not how they were loaded."""
    parts = ["qualenv", CHECKER_SALT]
    for qdef in sorted(quals, key=lambda d: d.name):
        parts.append(qdef.name)
        parts.append(qdef.source or repr(qdef))
    return _digest(parts)


def interface_digest(program) -> str:
    """Content hash of one unit's declared surface: every signature,
    struct/union layout, and global type.  Folded into every function
    fingerprint in the unit, so an interface edit re-checks them all."""
    from repro.cil.printer import type_to_str

    parts = ["iface", CHECKER_SALT]
    for name in sorted(program.structs):
        kind = "union" if name in program.unions else "struct"
        fields = ";".join(
            f"{fname}:{type_to_str(ftype)}"
            for fname, ftype in program.structs[name]
        )
        parts.append(f"{kind} {name} {{{fields}}}")
    for g in sorted(program.globals, key=lambda g: g.name):
        parts.append(f"global {g.name}:{type_to_str(g.ctype)}")
    for name in sorted(program.signatures):
        parts.append(f"sig {name}:{type_to_str(program.signatures[name])}")
    return _digest(parts)


def function_fingerprint(
    func,
    interface: str,
    env: str,
    flow_sensitive: bool = False,
) -> str:
    """The content fingerprint one function's check verdict is keyed
    by: canonical body + unit interface + qualifier environment +
    checker mode."""
    from repro.cil.printer import function_to_c

    return _digest(
        [
            "fn",
            CHECKER_SALT,
            func.name,
            function_to_c(func),
            interface,
            env,
            "flow" if flow_sensitive else "noflow",
        ]
    )


def unit_function_fingerprints(
    program, env: str, flow_sensitive: bool = False
) -> "dict[str, str]":
    """Fingerprint every function in a lowered unit (name -> digest)."""
    interface = interface_digest(program)
    return {
        f.name: function_fingerprint(
            f, interface, env, flow_sensitive=flow_sensitive
        )
        for f in program.functions
    }
