"""Canonical fingerprints for proof obligations.

A cache entry is addressed by *content*, never by file name or rule
position: two keys identify it —

* the **obligation key**: a SHA-256 over a canonical S-expression
  rendering of the goal formula plus any per-obligation extra axioms.
  Renaming a ``.qual`` file or reordering its clauses leaves the key
  unchanged; editing a predicate, an invariant, or a referenced
  qualifier's definition (whose invariant is inlined into the goal)
  changes it.
* the **environment key**: a SHA-256 over the prover's axiom set, an
  arbitrary context string (the soundness checker passes the qualifier
  definition's normalized source text), and the prover version salt.
  Bumping the salt, changing the dynamic-semantics axioms, or editing
  the definition text invalidates every entry proved under the old
  environment — those entries are detected as *stale* and purged.

The canonical rendering is a deliberate, versioned format (not
``repr``/``pickle``): every constructor of the term/formula language is
spelled out below, including quantifier triggers, which affect what the
prover can prove and therefore belong in the identity.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, NamedTuple

from repro.prover.terms import (
    And,
    Eq,
    Exists,
    FFalse,
    ForAll,
    Formula,
    FTrue,
    Iff,
    Implies,
    Le,
    Lt,
    Not,
    Or,
    Pr,
    TApp,
    Term,
    TInt,
    TVar,
)

#: Salt mixed into every environment key.  Bump the trailing integer
#: whenever the prover's search behaviour changes in a way that could
#: flip a verdict (new lemma schemas, different instantiation strategy,
#: fixed unsoundness) — every cached result proved by the old prover
#: then reads as stale instead of being trusted.
PROVER_SALT = "repro-prover/1"


class ProofKey(NamedTuple):
    """The two-part content address of one proof obligation."""

    obligation: str  # hex digest of the goal (+ extra axioms)
    environment: str  # hex digest of (axioms, context, salt)

    def __str__(self) -> str:
        return f"{self.obligation[:12]}@{self.environment[:12]}"


# ------------------------------------------------------- canonical rendering


def canonical_term(t: Term) -> str:
    if isinstance(t, TVar):
        return f"(v {t.name})"
    if isinstance(t, TInt):
        return f"(i {t.value})"
    if isinstance(t, TApp):
        if not t.args:
            return f"(a {t.fname})"
        args = " ".join(canonical_term(a) for a in t.args)
        return f"(a {t.fname} {args})"
    raise TypeError(f"unknown term {t!r}")


def canonical_formula(f: Formula) -> str:
    if isinstance(f, FTrue):
        return "(true)"
    if isinstance(f, FFalse):
        return "(false)"
    if isinstance(f, Eq):
        return f"(= {canonical_term(f.left)} {canonical_term(f.right)})"
    if isinstance(f, Le):
        return f"(<= {canonical_term(f.left)} {canonical_term(f.right)})"
    if isinstance(f, Lt):
        return f"(< {canonical_term(f.left)} {canonical_term(f.right)})"
    if isinstance(f, Pr):
        args = " ".join(canonical_term(a) for a in f.args)
        return f"(pr {f.name} {args})"
    if isinstance(f, Not):
        return f"(not {canonical_formula(f.operand)})"
    if isinstance(f, And):
        return "(and " + " ".join(canonical_formula(c) for c in f.conjuncts) + ")"
    if isinstance(f, Or):
        return "(or " + " ".join(canonical_formula(d) for d in f.disjuncts) + ")"
    if isinstance(f, Implies):
        return f"(=> {canonical_formula(f.left)} {canonical_formula(f.right)})"
    if isinstance(f, Iff):
        return f"(<=> {canonical_formula(f.left)} {canonical_formula(f.right)})"
    if isinstance(f, ForAll):
        trig = " ".join(
            "(trigger " + " ".join(canonical_term(p) for p in pattern) + ")"
            for pattern in f.triggers
        )
        return (
            f"(forall ({' '.join(f.vars)}) "
            + (f"{trig} " if trig else "")
            + canonical_formula(f.body)
            + ")"
        )
    if isinstance(f, Exists):
        return f"(exists ({' '.join(f.vars)}) {canonical_formula(f.body)})"
    raise TypeError(f"unknown formula {f!r}")


# ------------------------------------------------------------------ hashing


def _digest(parts: Iterable[str]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")  # unambiguous part separator
    return h.hexdigest()


def obligation_key(goal: Formula, extra_axioms: Iterable[Formula] = ()) -> str:
    """Content hash of one obligation: the goal and its local axioms."""
    return _digest(
        ["goal", canonical_formula(goal)]
        + [canonical_formula(ax) for ax in extra_axioms]
    )


def environment_key(
    axioms: Iterable[Formula], context: str = "", salt: str = PROVER_SALT
) -> str:
    """Content hash of everything an obligation is proved *under*."""
    return _digest(
        ["env", salt, context] + [canonical_formula(ax) for ax in axioms]
    )


def proof_key(
    goal: Formula,
    axioms: Iterable[Formula],
    extra_axioms: Iterable[Formula] = (),
    context: str = "",
    salt: str = PROVER_SALT,
) -> ProofKey:
    """The full two-part cache key for one proof attempt."""
    return ProofKey(
        obligation=obligation_key(goal, extra_axioms),
        environment=environment_key(axioms, context=context, salt=salt),
    )
