"""Content-addressed proof cache (see docs/caching.md).

The prover re-proves byte-identical obligations on every invocation;
at corpus scale that is the hot path.  This package memoizes settled
verdicts — ``PROVED``/``REFUTED``, never budget-dependent outcomes —
keyed by a canonical fingerprint of the obligation and everything it
was proved under, so warm re-checks skip the prover entirely and
edited definitions invalidate themselves.
"""

from repro.cache.fingerprint import (
    PROVER_SALT,
    ProofKey,
    canonical_formula,
    canonical_term,
    environment_key,
    obligation_key,
    proof_key,
)
from repro.cache.store import (
    CACHE_FORMAT,
    CACHEABLE_VERDICTS,
    DEFAULT_CACHE_DIR,
    ProofCache,
)

__all__ = [
    "PROVER_SALT",
    "ProofKey",
    "canonical_formula",
    "canonical_term",
    "environment_key",
    "obligation_key",
    "proof_key",
    "CACHE_FORMAT",
    "CACHEABLE_VERDICTS",
    "DEFAULT_CACHE_DIR",
    "ProofCache",
]
