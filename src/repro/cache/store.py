"""The persistent proof cache: an in-memory LRU tier over sqlite.

``ProofCache`` maps a :class:`~repro.cache.fingerprint.ProofKey` to the
payload of a settled proof attempt.  Only *settled* verdicts are ever
stored — ``PROVED`` and ``REFUTED`` are properties of the obligation
itself, while ``TIMEOUT`` and ``GAVE_UP`` are properties of one run's
budget and must be re-attempted, never replayed.

Tiers:

* a bounded in-memory LRU (dict order) for repeated obligations within
  one process — shared sub-obligations across qualifier files hit here;
* a sqlite database under the cache directory (default
  ``.repro-cache/``) shared across runs and across ``--jobs`` worker
  processes; sqlite's own locking makes concurrent writers safe, and a
  post-fork connection is reopened per process.

Every disk failure is absorbed — a cache must never be the reason a
check fails — with *rebuild-or-bypass* triage:

* **corruption** (``sqlite3.DatabaseError`` other than
  ``OperationalError``: garbled header, malformed disk image) deletes
  the damaged file and rebuilds it empty, once per instance — the run
  goes cold but the disk tier stays live for the next run;
* **everything else** (``database is locked``, permission errors, I/O
  errors, a second corruption after a rebuild) bypasses the disk tier
  for the rest of the run and falls back to the in-memory LRU.

Either way the ``degraded`` counter (and ``cache.degraded`` in
``repro.obs``) records that the disk tier did not survive intact.

Counters (``hits``/``misses``/``stores``/``evictions``/``stale``/
``errors``/``degraded``) accumulate per instance; per-run deltas are
folded into a ``counters`` table so ``python -m repro cache stats``
can report lifetime totals across processes.
"""

from __future__ import annotations

import json
import os
import sqlite3
from collections import OrderedDict
from typing import Dict, Iterable, Optional

from repro import faults as _faults
from repro import obs
from repro.cache.fingerprint import PROVER_SALT, ProofKey, proof_key

#: Verdicts that are facts about the obligation (cacheable), as opposed
#: to facts about one attempt's budget (never cached).
CACHEABLE_VERDICTS = frozenset({"PROVED", "REFUTED"})

#: On-disk layout version; bump on incompatible schema changes (old
#: databases are then rebuilt from scratch rather than misread).
CACHE_FORMAT = 1

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

COUNTER_NAMES = (
    "hits", "misses", "stores", "evictions", "stale", "errors", "degraded",
)


def _empty_counters() -> Dict[str, int]:
    return {name: 0 for name in COUNTER_NAMES}


class ProofCache:
    """A content-addressed store of settled proof results."""

    def __init__(
        self,
        cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
        max_memory_entries: int = 2048,
        salt: str = PROVER_SALT,
    ):
        self.cache_dir = cache_dir
        self.salt = salt
        self.max_memory_entries = max(1, max_memory_entries)
        self.counters: Dict[str, int] = _empty_counters()
        self._memory: "OrderedDict[ProofKey, dict]" = OrderedDict()
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None
        self._disk_failed = cache_dir is None
        self._rebuilt = False  # one corruption rebuild per instance

    # ------------------------------------------------------------------ keys

    def key(self, goal, axioms, extra_axioms=(), context: str = "") -> ProofKey:
        """Fingerprint one proof attempt under this cache's salt."""
        return proof_key(
            goal, axioms, extra_axioms=extra_axioms, context=context,
            salt=self.salt,
        )

    # ------------------------------------------------------------ disk tier

    @property
    def path(self) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, "proofs.sqlite")

    def _connection(self) -> Optional[sqlite3.Connection]:
        """The per-process sqlite connection, or ``None`` when the disk
        tier is disabled.  A connection inherited across ``fork`` is
        never reused — sharing one sqlite handle between processes
        corrupts the database, so each child reopens its own."""
        if self._disk_failed:
            return None
        if self._conn is not None and self._conn_pid == os.getpid():
            return self._conn
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            if os.path.exists(self.path) and _faults.fire_once(
                "corrupt_cache", self.path
            ):
                _faults.corrupt_file(self.path)
            conn = sqlite3.connect(self.path, timeout=5.0)
            conn.execute(
                "CREATE TABLE IF NOT EXISTS proofs ("
                " obl_key TEXT NOT NULL,"
                " env_key TEXT NOT NULL,"
                " verdict TEXT NOT NULL,"
                " payload TEXT NOT NULL,"
                " created REAL NOT NULL,"
                " PRIMARY KEY (obl_key, env_key))"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS counters ("
                " name TEXT PRIMARY KEY, value INTEGER NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            stored = conn.execute(
                "SELECT value FROM meta WHERE key = 'format'"
            ).fetchone()
            if stored is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('format', ?)",
                    (str(CACHE_FORMAT),),
                )
            elif stored[0] != str(CACHE_FORMAT):
                # Incompatible layout from a future/past version: start
                # over rather than misinterpret rows.
                conn.execute("DELETE FROM proofs")
                conn.execute("DELETE FROM counters")
                conn.execute(
                    "UPDATE meta SET value = ? WHERE key = 'format'",
                    (str(CACHE_FORMAT),),
                )
            conn.commit()
        except (sqlite3.Error, OSError, ValueError) as exc:
            self._disk_failure(exc)
            if self._disk_failed:
                return None
            # The damaged file was rebuilt: connect to the fresh one.
            # Bounded: a second failure trips the bypass path above.
            return self._connection()
        self._conn = conn
        self._conn_pid = os.getpid()
        return conn

    @property
    def disk_available(self) -> bool:
        """Whether the on-disk tier is still live (it is disabled, not
        fatal, after a corruption or I/O failure)."""
        return not self._disk_failed

    def _disk_failure(self, exc: Optional[Exception] = None) -> None:
        """Degrade the disk tier after a failure: *rebuild* (delete and
        recreate, once per instance) when the database file itself is
        corrupt, *bypass* (disable the tier, keep the memory LRU) for
        everything else — locks, permissions, I/O errors, or corruption
        striking again after a rebuild."""
        self.counters["errors"] += 1
        self.counters["degraded"] += 1
        obs.incr("cache.degraded")
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
            self._conn_pid = None
        # "database is locked"/"unable to open" are OperationalError —
        # the file may be fine, another process just holds it; deleting
        # it would destroy a healthy cache.  Only non-operational
        # DatabaseError (not a database, malformed image) is corruption.
        corrupted = isinstance(exc, sqlite3.DatabaseError) and not isinstance(
            exc, sqlite3.OperationalError
        )
        if corrupted and not self._rebuilt and self.path is not None:
            self._rebuilt = True
            try:
                os.remove(self.path)
                return  # disk tier stays live; next connect rebuilds
            except OSError:
                pass
        self._disk_failed = True

    # Backwards-compatible alias (kept for external callers/tests).
    def _disk_abandon(self) -> None:
        self._disk_failed = True
        self.counters["errors"] += 1
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    # ------------------------------------------------------------- get / put

    def get(self, key: ProofKey) -> Optional[dict]:
        """The cached payload for ``key``, or ``None`` on a miss.

        A hit in the disk tier is promoted to the memory tier.  A miss
        additionally sweeps entries for the *same obligation* proved
        under a *different environment* (edited qualifier definition,
        changed axioms, bumped prover salt): those are counted stale
        and purged — they can never be valid again.
        """
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.counters["hits"] += 1
            obs.incr("cache.hits")
            return dict(entry)
        conn = self._connection()
        if conn is not None:
            try:
                row = conn.execute(
                    "SELECT payload FROM proofs"
                    " WHERE obl_key = ? AND env_key = ?",
                    (key.obligation, key.environment),
                ).fetchone()
            except (sqlite3.Error, OSError) as exc:
                self._disk_failure(exc)
                row = None
            if row is not None:
                try:
                    entry = json.loads(row[0])
                except ValueError:
                    # A damaged payload is a miss, not a crash.
                    self.counters["errors"] += 1
                    entry = None
                if isinstance(entry, dict):
                    self._remember(key, entry)
                    self.counters["hits"] += 1
                    obs.incr("cache.hits")
                    return dict(entry)
        self._sweep_stale(key)
        self.counters["misses"] += 1
        obs.incr("cache.misses")
        return None

    def put(self, key: ProofKey, payload: dict) -> bool:
        """Store one settled result; returns ``False`` (and stores
        nothing) for non-cacheable verdicts.

        The ``stores`` counter counts entries that actually reached the
        persistent tier — a failed disk write (the tier is then
        abandoned) bumps ``errors``, not ``stores``, so cache stats
        never over-report what a later run can replay.  A deliberately
        memory-only cache (``cache_dir=None``) counts memory stores,
        since the memory tier is all it has.

        The ``created`` column is an *insertion sequence* (monotonic,
        assigned inside the INSERT itself so concurrent writers cannot
        race), not a wall-clock stamp: ordering by it is stable under
        clock adjustments, which a ``time.time()`` stamp was not.
        """
        if payload.get("verdict") not in CACHEABLE_VERDICTS:
            return False
        entry = dict(payload)
        self._remember(key, entry)
        persisted = self.cache_dir is None  # memory-only: always "stored"
        conn = self._connection()
        if conn is not None:
            try:
                conn.execute(
                    "INSERT OR REPLACE INTO proofs"
                    " (obl_key, env_key, verdict, payload, created)"
                    " VALUES (?, ?, ?, ?,"
                    "  (SELECT COALESCE(MAX(created), 0) + 1 FROM proofs))",
                    (
                        key.obligation,
                        key.environment,
                        entry["verdict"],
                        json.dumps(entry, sort_keys=True),
                    ),
                )
                conn.commit()
                persisted = True
            except (sqlite3.Error, OSError, TypeError) as exc:
                self._disk_failure(exc)
        if persisted:
            self.counters["stores"] += 1
            obs.incr("cache.stores")
        return True

    def _remember(self, key: ProofKey, entry: dict) -> None:
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.counters["evictions"] += 1

    def _sweep_stale(self, key: ProofKey) -> None:
        """Purge results for this obligation proved under an outdated
        environment (superseded axioms, definition text, or salt)."""
        stale = [
            k for k in self._memory
            if k.obligation == key.obligation and k.environment != key.environment
        ]
        for k in stale:
            del self._memory[k]
        count = len(stale)
        conn = self._connection()
        if conn is not None:
            try:
                cur = conn.execute(
                    "DELETE FROM proofs WHERE obl_key = ? AND env_key <> ?",
                    (key.obligation, key.environment),
                )
                conn.commit()
                # Memory entries are mirrored on disk (put writes both,
                # get promotes), so the disk rowcount already covers
                # them — take the larger, don't sum.
                count = max(count, cur.rowcount)
            except (sqlite3.Error, OSError) as exc:
                self._disk_failure(exc)
        self.counters["stale"] += count

    # ------------------------------------------------------------ statistics

    def snapshot(self) -> Dict[str, int]:
        """A copy of the counters, for before/after deltas."""
        return dict(self.counters)

    def delta(self, since: Dict[str, int]) -> Dict[str, int]:
        """Counter movement since a :meth:`snapshot`."""
        return {
            name: self.counters[name] - since.get(name, 0)
            for name in COUNTER_NAMES
        }

    def entry_count(self) -> int:
        """Entries in the disk tier (memory-only: entries in memory)."""
        conn = self._connection()
        if conn is None:
            return len(self._memory)
        try:
            (count,) = conn.execute("SELECT COUNT(*) FROM proofs").fetchone()
            return int(count)
        except (sqlite3.Error, OSError) as exc:
            self._disk_failure(exc)
            return len(self._memory)

    def stats(self) -> dict:
        """This instance's counters plus store-level facts."""
        return {
            **self.counters,
            "entries": self.entry_count(),
            "path": self.path,
            "disk": self.disk_available,
            "memory_entries": len(self._memory),
        }

    def flush_counters(self, delta: Optional[Dict[str, int]] = None) -> None:
        """Fold a per-run counter delta into the lifetime totals in the
        database (atomic upsert: safe from concurrent ``--jobs``
        workers).  With no argument, flushes everything un-flushed."""
        if delta is None:
            delta = self.delta(getattr(self, "_flushed", _empty_counters()))
            self._flushed = self.snapshot()
        conn = self._connection()
        if conn is None:
            return
        try:
            for name in COUNTER_NAMES:
                value = int(delta.get(name, 0))
                if not value:
                    continue
                conn.execute(
                    "INSERT INTO counters (name, value) VALUES (?, ?)"
                    " ON CONFLICT(name) DO UPDATE"
                    " SET value = value + excluded.value",
                    (name, value),
                )
            conn.commit()
        except (sqlite3.Error, OSError) as exc:
            self._disk_failure(exc)

    def lifetime_counters(self) -> Dict[str, int]:
        """Accumulated counters over every run against this store."""
        totals = _empty_counters()
        conn = self._connection()
        if conn is None:
            return totals
        try:
            for name, value in conn.execute(
                "SELECT name, value FROM counters"
            ):
                if name in totals:
                    totals[name] = int(value)
        except (sqlite3.Error, OSError) as exc:
            self._disk_failure(exc)
        return totals

    def size_bytes(self) -> int:
        if self.path is None:
            return 0
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    # -------------------------------------------------------------- clearing

    def clear(self) -> int:
        """Drop every entry (and the lifetime counters); returns how
        many proof entries were removed."""
        removed = len(self._memory)
        self._memory.clear()
        conn = self._connection()
        if conn is not None:
            try:
                cur = conn.execute("DELETE FROM proofs")
                conn.execute("DELETE FROM counters")
                conn.commit()
                removed = max(cur.rowcount, 0)
            except (sqlite3.Error, OSError) as exc:
                self._disk_failure(exc)
        return removed

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
            self._conn_pid = None

    def __enter__(self) -> "ProofCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
