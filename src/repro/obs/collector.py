"""The tracing/metrics collector: nested spans plus named counters.

One process-wide :class:`Collector` gathers two kinds of data:

* **Spans** — named, nested, monotonic (``time.perf_counter``) timing
  intervals forming a tree per thread.  A span is opened with
  :func:`repro.obs.span` as a context manager; children attach to the
  innermost open span of the same thread.
* **Counters** — flat ``name -> number`` accumulators for hot paths
  where a span per event would dominate the cost being measured
  (SAT calls, E-matching instances, cache hits).  Names are dotted
  (``prover.sat_ms``); the ``_ms`` suffix marks a value in
  milliseconds (see docs/observability.md for the naming convention).

Safety properties:

* **Disabled mode is free.**  The module-level gate in
  :mod:`repro.obs` returns a shared no-op singleton before any
  allocation or lock; hot loops pay one global read and a no-op
  ``with``.
* **Thread-safe.**  The span stack is thread-local (each thread grows
  its own subtree); counters and the root list are guarded by a lock.
* **Fork-safe.**  The collector remembers the pid that created it;
  the first recording in a forked child resets the inherited state so
  the child ships only its own spans back to the parent (see
  ``harness.batch``), which merges them with :meth:`Collector.merge`.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional


class Span:
    """One timed interval in the trace tree."""

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name: str, attrs: Optional[dict] = None):
        self.name = name
        self.attrs = attrs or None
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    @property
    def duration_ms(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return (end - self.start) * 1000.0

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "ms": round(self.duration_ms, 3)}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls.__new__(cls)
        span.name = str(data.get("name", "?"))
        span.attrs = dict(data["attrs"]) if data.get("attrs") else None
        span.start = 0.0
        span.end = float(data.get("ms", 0.0)) / 1000.0
        span.children = [
            cls.from_dict(c) for c in data.get("children", ())
        ]
        return span


class _NullSpan:
    """The shared disabled-mode no-op: every ``span()``/``timer()``
    call while disabled returns this one singleton — no allocation."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager that opens/closes one :class:`Span`."""

    __slots__ = ("_collector", "_span")

    def __init__(self, collector: "Collector", name: str, attrs: dict):
        self._collector = collector
        self._span = Span(name, attrs)

    def __enter__(self) -> "_SpanHandle":
        self._collector._push(self._span)
        return self

    def __exit__(self, *exc) -> bool:
        self._span.end = time.perf_counter()
        self._collector._pop(self._span)
        return False

    def annotate(self, **attrs) -> None:
        """Attach attributes to the open span after the fact."""
        if self._span.attrs is None:
            self._span.attrs = {}
        self._span.attrs.update(attrs)


class _Timer:
    """Context manager that adds its elapsed milliseconds to one
    counter — the span-free fast path for hot call sites."""

    __slots__ = ("_collector", "_name", "_t0")

    def __init__(self, collector: "Collector", name: str):
        self._collector = collector
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._collector.add(
            self._name, (time.perf_counter() - self._t0) * 1000.0
        )
        return False


class Collector:
    """Process-wide span tree + counters (see module docstring)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        self.pid = os.getpid()
        self.counters: Dict[str, float] = {}
        self.roots: List[Span] = []

    # -------------------------------------------------------- fork safety

    def _fresh_after_fork(self) -> None:
        """Drop state inherited across ``fork`` so a pool worker records
        only its own activity."""
        if os.getpid() == self.pid:
            return
        self._lock = threading.Lock()
        self._local = threading.local()
        self.pid = os.getpid()
        self.counters = {}
        self.roots = []

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # --------------------------------------------------------------- spans

    def span(self, name: str, attrs: dict) -> _SpanHandle:
        self._fresh_after_fork()
        return _SpanHandle(self, name, attrs)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate mispaired exits (a span leaked across an exception
        # unwind): pop through to our own frame.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # ------------------------------------------------------------ counters

    def timer(self, name: str) -> _Timer:
        self._fresh_after_fork()
        return _Timer(self, name)

    def add(self, name: str, value: float) -> None:
        self._fresh_after_fork()
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def count_max(self, name: str, value: float) -> None:
        """Record a high-water mark (e.g. peak clause count)."""
        self._fresh_after_fork()
        with self._lock:
            if value > self.counters.get(name, 0):
                self.counters[name] = value

    # ------------------------------------------------- snapshot and merge

    def mark(self) -> dict:
        """An opaque baseline for :meth:`since`: counter values and the
        number of completed root spans right now."""
        with self._lock:
            return {"counters": dict(self.counters), "roots": len(self.roots)}

    def snapshot(self) -> dict:
        """The full collected state, JSON-ready (this is the payload a
        pool worker ships back over the result pipe, and the shape
        ``--trace-out`` writes)."""
        with self._lock:
            return {
                "pid": self.pid,
                "counters": dict(self.counters),
                "spans": [s.to_dict() for s in self.roots],
            }

    def merge(self, payload: dict) -> None:
        """Fold a child snapshot (from :meth:`snapshot`, possibly from
        another process) into this collector: counters sum, the child's
        root spans graft under the current open span (or the roots)."""
        self._fresh_after_fork()
        spans = [Span.from_dict(s) for s in payload.get("spans", ())]
        child_pid = payload.get("pid")
        if child_pid is not None and child_pid != self.pid:
            for span in spans:
                if span.attrs is None:
                    span.attrs = {}
                span.attrs.setdefault("pid", child_pid)
        stack = self._stack()
        with self._lock:
            for name, value in payload.get("counters", {}).items():
                if name.endswith("_peak"):
                    # High-water marks don't sum across processes.
                    self.counters[name] = max(
                        self.counters.get(name, 0), value
                    )
                else:
                    self.counters[name] = self.counters.get(name, 0) + value
            if stack:
                stack[-1].children.extend(spans)
            else:
                self.roots.extend(spans)

    def since(self, mark: dict) -> dict:
        """Counters and completed root spans accumulated after
        :meth:`mark` — the per-invocation slice of a shared collector."""
        with self._lock:
            base = mark.get("counters", {})
            counters = {
                name: value - base.get(name, 0)
                for name, value in self.counters.items()
                if value != base.get(name, 0)
            }
            spans = [s.to_dict() for s in self.roots[mark.get("roots", 0):]]
        return {"pid": self.pid, "counters": counters, "spans": spans}
