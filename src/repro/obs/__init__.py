"""Pipeline observability: structured tracing and metrics.

This package is the single switchboard for "where does the time go?"
questions across the whole pipeline — cfront parse, CIL lowering,
typechecking, dataflow solving, obligation generation, the prover's
theory cores, the proof cache, and batch pool workers.  See
docs/observability.md for the span model and the counter naming
convention.

Usage (every call site follows the same pattern)::

    from repro import obs

    with obs.span("typecheck", unit=path):
        ...                       # child spans nest automatically

    with obs.timer("prover.sat_ms"):   # hot path: counter, no span
        model = sat.solve(...)

    obs.incr("prover.instances", 3)

Profiling is **off by default and free when off**: every entry point
checks one module-level boolean and returns a shared no-op before any
allocation.  ``repro --profile`` / ``--trace-out`` (or
``profile=True`` on an API request) turn it on for the invocation.

The collector is process-wide, thread-safe, and fork-aware; pool
workers ship their span subtree back through the harness result pipe,
and the parent grafts it into its own tree (:func:`merge`).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.collector import NULL_SPAN, Collector, Span

__all__ = [
    "Collector",
    "Span",
    "enabled",
    "enable",
    "disable",
    "reset",
    "span",
    "timer",
    "incr",
    "add_time",
    "count_max",
    "mark",
    "since",
    "snapshot",
    "merge",
    "build_timings",
    "write_trace",
]

#: The global gate.  Read directly by the helpers below (one global
#: load on the disabled fast path); mutate only via enable()/disable().
_ENABLED = False

_collector = Collector()


def enabled() -> bool:
    """Is collection currently on?"""
    return _ENABLED


def enable() -> None:
    """Turn collection on (idempotent; keeps already-collected data)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn collection off.  Collected data is retained (so a trace
    file can still be written); use :func:`reset` to drop it."""
    global _ENABLED
    _ENABLED = False


def reset() -> None:
    """Drop all collected spans and counters."""
    global _collector
    _collector = Collector()


def current() -> Collector:
    """The live collector (for tests and advanced consumers)."""
    return _collector


# ------------------------------------------------------------- recording


def span(name: str, **attrs):
    """Open a nested span; a no-op singleton when disabled."""
    if not _ENABLED:
        return NULL_SPAN
    return _collector.span(name, attrs)


def timer(name: str):
    """Time one block into counter ``name`` (use a ``*_ms`` name);
    a no-op singleton when disabled."""
    if not _ENABLED:
        return NULL_SPAN
    return _collector.timer(name)


def incr(name: str, value: float = 1) -> None:
    """Add ``value`` to counter ``name``."""
    if _ENABLED:
        _collector.add(name, value)


def add_time(name: str, ms: float) -> None:
    """Add already-measured milliseconds to counter ``name``."""
    if _ENABLED:
        _collector.add(name, ms)


def count_max(name: str, value: float) -> None:
    """Record a high-water mark (``*_peak`` names take max on merge)."""
    if _ENABLED:
        _collector.count_max(name, value)


# ----------------------------------------------------- snapshot plumbing


def mark() -> dict:
    """Baseline for :func:`since` (also valid when disabled)."""
    return _collector.mark()


def since(marker: dict) -> dict:
    """Everything collected after ``marker``."""
    return _collector.since(marker)


def snapshot() -> dict:
    """The full collected state, JSON-ready."""
    return _collector.snapshot()


def merge(payload: dict) -> None:
    """Graft a child snapshot (e.g. shipped from a pool worker) into
    the live collector."""
    _collector.merge(payload)


def write_trace(path: str, command: str = "") -> None:
    """Write the collected trace to ``path`` as JSON (the payload of
    ``--trace-out``)."""
    payload = {
        "schema_version": 1,
        "command": command,
        **snapshot(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -------------------------------------------------------------- reporting

#: Span names folded into the ``phases`` section of a timings block,
#: in pipeline order (other spans still appear in ``--trace-out``).
PHASE_SPANS = (
    "parse",
    "parse_quals",
    "lower",
    "typecheck",
    "infer",
    "obligations",
    "prove",
    "minimize",
)


def _walk(span_dict: dict):
    yield span_dict
    for child in span_dict.get("children", ()):
        yield from _walk(child)


def build_timings(slice_: dict, total_ms: Optional[float] = None) -> dict:
    """Aggregate one collected slice (from :func:`since` or
    :func:`snapshot`) into the additive ``timings`` block of the
    schema-v1 JSON reports.

    Shape (all times in milliseconds)::

        {
          "total_ms": ...,
          "phases":  {"parse": {"ms": ..., "count": ...}, ...},
          "prover":  {"calls", "proofs_ms", "sat_ms", "theory_ms",
                      "euf_ms", "linarith_ms", "explain_ms", "quant_ms",
                      "ematch_rounds", "instances", "conflicts",
                      "cores", "cores_minimal", "cores_nonminimal",
                      "sat_calls", "clauses_peak"},
          "cache":   {"hits", "misses", "stores"},
          "counters": {...every raw counter...},
        }

    ``euf_ms`` is derived: the Nelson–Oppen combination time minus the
    linear-arithmetic share (congruence closure has no single choke
    point worth timing separately).
    """
    counters = dict(slice_.get("counters", {}))
    phases: dict = {}
    for root in slice_.get("spans", ()):
        for node in _walk(root):
            name = node.get("name")
            if name in PHASE_SPANS:
                entry = phases.setdefault(name, {"ms": 0.0, "count": 0})
                entry["ms"] += node.get("ms", 0.0)
                entry["count"] += 1
    for entry in phases.values():
        entry["ms"] = round(entry["ms"], 3)

    def c(name: str, default: float = 0) -> float:
        return counters.get(name, default)

    theory_ms = c("prover.theory_ms")
    linarith_ms = c("prover.linarith_ms")
    prover = {
        "calls": int(c("prover.calls")),
        "proofs_ms": round(c("prover.proofs_ms"), 3),
        "sat_calls": int(c("prover.sat_calls")),
        "sat_ms": round(c("prover.sat_ms"), 3),
        "theory_ms": round(theory_ms, 3),
        "linarith_ms": round(linarith_ms, 3),
        "euf_ms": round(max(0.0, theory_ms - linarith_ms), 3),
        # Explanation overhead: core ordering, the soundness check, and
        # the 1-minimality polish (a sub-interval of theory_ms; zero on
        # the --no-explain ddmin path).
        "explain_ms": round(c("prover.explain_ms"), 3),
        "quant_ms": round(c("prover.quant_ms"), 3),
        "ematch_rounds": int(c("prover.ematch_rounds")),
        "instances": int(c("prover.instances")),
        "conflicts": int(c("prover.conflicts")),
        # Conflict cores by minimality: cores == minimal + nonminimal
        # (a nonminimal core means a minimization deadline tripped).
        "cores": int(c("prover.cores")),
        "cores_minimal": int(c("prover.cores_minimal")),
        "cores_nonminimal": int(c("prover.cores_nonminimal")),
        "clauses_peak": int(c("prover.clauses_peak")),
    }
    cache = {
        "hits": int(c("cache.hits")),
        "misses": int(c("cache.misses")),
        "stores": int(c("cache.stores")),
    }
    out = {
        "phases": dict(sorted(phases.items())),
        "prover": prover,
        "cache": cache,
        "counters": {
            name: (round(v, 3) if isinstance(v, float) else v)
            for name, v in sorted(counters.items())
        },
    }
    if total_ms is not None:
        out["total_ms"] = round(total_ms, 3)
    return out


def format_timings(timings: dict) -> str:
    """Human-readable rendering of a timings block (the ``--profile``
    text-mode summary, printed to stderr)."""
    lines = ["profile:"]
    if "total_ms" in timings:
        lines.append(f"  total        {timings['total_ms']:10.1f} ms")
    for name in PHASE_SPANS:
        entry = timings.get("phases", {}).get(name)
        if entry:
            lines.append(
                f"  {name:<12} {entry['ms']:10.1f} ms  (x{entry['count']})"
            )
    prover = timings.get("prover", {})
    if prover.get("calls"):
        lines.append(
            f"  prover       {prover['proofs_ms']:10.1f} ms  "
            f"({prover['calls']} proof(s))"
        )
        for key in ("sat_ms", "euf_ms", "linarith_ms", "explain_ms", "quant_ms"):
            lines.append(
                f"    {key[:-3]:<10} {prover.get(key, 0.0):10.1f} ms"
            )
        lines.append(
            f"    rounds={prover['ematch_rounds']} "
            f"instances={prover['instances']} "
            f"conflicts={prover['conflicts']} "
            f"cores={prover.get('cores', 0)} "
            f"(nonminimal={prover.get('cores_nonminimal', 0)}) "
            f"clauses_peak={prover['clauses_peak']}"
        )
    cache = timings.get("cache", {})
    if cache.get("hits") or cache.get("misses"):
        lines.append(
            f"  cache        {cache.get('hits', 0)} hit(s), "
            f"{cache.get('misses', 0)} miss(es), "
            f"{cache.get('stores', 0)} stored"
        )
    return "\n".join(lines)
