"""Unified benchmark runner: ``python -m repro bench``.

The repo's benchmark suites (``benchmarks/bench_*.py``) are written
against the pytest-benchmark fixture API so they double as CI tests.
This runner executes them *without* pytest: it imports each suite by
path, resolves the small slice of pytest machinery they actually use
(the ``benchmark`` fixture, module-scoped fixtures, ``parametrize``,
``monkeypatch.setattr``), runs every case with warmup/repeat control,
and writes one ``BENCH_<name>.json`` holding per-suite wall times, the
prover's per-theory breakdown, cache counters, and machine info.

The collector (:mod:`repro.obs`) is enabled for the whole run, so the
per-suite ``timings`` blocks carry real SAT/EUF/linarith/quant splits
— the numbers a prover regression shows up in first.
"""

from __future__ import annotations

import importlib.util
import inspect
import json
import os
import platform
import time
import traceback
from typing import Dict, List, Optional, Tuple

from repro import obs

#: Suites run by ``--smoke``: the cheapest two, chosen for wall time —
#: the smoke stage proves the runner and the report shape, not perf.
SMOKE_SUITES = ("typecheck_time", "flow_ablation")


class UnknownFixture(Exception):
    """A test case requests a fixture the runner cannot supply."""


class BenchmarkShim:
    """The slice of pytest-benchmark's ``benchmark`` fixture the suites
    use: ``benchmark(fn)``, ``benchmark.pedantic(...)``,
    ``benchmark.stats["mean"]``, ``benchmark.extra_info``.

    The runner's ``--warmup``/``--repeat`` override the per-call
    ``warmup_rounds``/``rounds`` so one flag scales every suite (and
    ``--smoke`` can pin everything to a single round).
    """

    def __init__(self, warmup: int, repeat: int):
        self.warmup = warmup
        self.repeat = repeat
        self.extra_info: Dict[str, object] = {}
        self.stats: Dict[str, float] = {"mean": 0.0, "min": 0.0, "rounds": 0}

    def _measure(self, fn, args, kwargs, iterations: int):
        iterations = max(1, iterations)
        result = None
        for _ in range(self.warmup):
            result = fn(*args, **kwargs)
        times: List[float] = []
        for _ in range(max(1, self.repeat)):
            start = time.perf_counter()
            for _ in range(iterations):
                result = fn(*args, **kwargs)
            times.append((time.perf_counter() - start) / iterations)
        self.stats = {
            "mean": sum(times) / len(times),
            "min": min(times),
            "max": max(times),
            "rounds": len(times),
        }
        return result

    def __call__(self, fn, *args, **kwargs):
        return self._measure(fn, args, kwargs, iterations=1)

    def pedantic(
        self,
        fn,
        args=(),
        kwargs=None,
        iterations: int = 1,
        rounds: int = 1,
        warmup_rounds: int = 0,
    ):
        return self._measure(fn, args, kwargs or {}, iterations=iterations)


class MonkeypatchShim:
    """``monkeypatch.setattr(obj, name, value)`` with undo — the only
    monkeypatch method the suites use."""

    def __init__(self) -> None:
        self._undo: List[Tuple[object, str, object]] = []

    def setattr(self, target, name, value):
        self._undo.append((target, name, getattr(target, name)))
        setattr(target, name, value)

    def undo(self) -> None:
        for target, name, old in reversed(self._undo):
            setattr(target, name, old)
        self._undo.clear()


# ------------------------------------------------------------- discovery


def bench_dir() -> str:
    """The benchmarks/ directory: next to the package's repo root, or
    under the current directory as a fallback."""
    import repro

    root = os.path.abspath(
        os.path.join(os.path.dirname(repro.__file__), "..", "..")
    )
    for base in (root, os.getcwd()):
        candidate = os.path.join(base, "benchmarks")
        if os.path.isdir(candidate):
            return candidate
    raise FileNotFoundError("no benchmarks/ directory found")


def discover_suites(directory: Optional[str] = None) -> Dict[str, str]:
    """Suite name -> path for every ``bench_*.py`` in ``directory``."""
    directory = directory or bench_dir()
    out: Dict[str, str] = {}
    for entry in sorted(os.listdir(directory)):
        if entry.startswith("bench_") and entry.endswith(".py"):
            out[entry[len("bench_"):-len(".py")]] = os.path.join(
                directory, entry
            )
    return out


def _load_suite(name: str, path: str):
    spec = importlib.util.spec_from_file_location(f"repro_bench_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ------------------------------------------------------------- execution


def _fixture_value(module, name: str, cache: Dict[str, object]):
    """Resolve a module-scoped ``@pytest.fixture`` by unwrapping to the
    plain function (``__wrapped__``); cached per suite like pytest's
    module scope.  Generator fixtures yield their value (teardown after
    ``yield`` is skipped — no suite relies on it)."""
    if name in cache:
        return cache[name]
    obj = getattr(module, name, None)
    if obj is None:
        raise UnknownFixture(name)
    func = getattr(obj, "__wrapped__", None)
    if func is None and callable(obj) and not inspect.isclass(obj):
        func = obj
    if func is None:
        raise UnknownFixture(name)
    value = func()
    if inspect.isgenerator(value):
        value = next(value)
    cache[name] = value
    return value


def _expand_cases(fn) -> List[Tuple[str, Dict[str, object]]]:
    """Cartesian expansion of ``@pytest.mark.parametrize`` marks into
    (case id suffix, bound arguments) pairs."""
    cases: List[Tuple[str, Dict[str, object]]] = [("", {})]
    for mark in getattr(fn, "pytestmark", ()):
        if getattr(mark, "name", "") != "parametrize":
            continue
        argnames, argvalues = mark.args[0], mark.args[1]
        names = [n.strip() for n in argnames.split(",")]
        ids = mark.kwargs.get("ids")
        expanded: List[Tuple[str, Dict[str, object]]] = []
        for suffix, bound in cases:
            for value in argvalues:
                values = value if len(names) > 1 else (value,)
                label = (
                    str(ids(value))
                    if callable(ids)
                    else "-".join(str(v) for v in values)
                )
                merged = dict(bound)
                merged.update(zip(names, values))
                expanded.append((f"{suffix}[{label}]", merged))
        cases = expanded
    return cases


def run_suite(name: str, path: str, warmup: int, repeat: int) -> dict:
    """Run one suite; returns its JSON-ready record (never raises —
    an import failure becomes ``status: "error"``)."""
    record: dict = {"suite": name, "path": path, "cases": []}
    started = time.perf_counter()
    marker = obs.mark()
    try:
        module = _load_suite(name, path)
    except Exception as exc:
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["elapsed_s"] = round(time.perf_counter() - started, 3)
        return record
    fixtures: Dict[str, object] = {}
    statuses = set()
    for attr in sorted(vars(module)):
        fn = getattr(module, attr)
        if not (attr.startswith("test_") and callable(fn)):
            continue
        for suffix, bound in _expand_cases(fn):
            case: dict = {"name": f"{attr}{suffix}"}
            shim = BenchmarkShim(warmup=warmup, repeat=repeat)
            patcher = MonkeypatchShim()
            kwargs: Dict[str, object] = {}
            try:
                for param in inspect.signature(fn).parameters:
                    if param == "benchmark":
                        kwargs[param] = shim
                    elif param == "monkeypatch":
                        kwargs[param] = patcher
                    elif param in bound:
                        kwargs[param] = bound[param]
                    else:
                        kwargs[param] = _fixture_value(
                            module, param, fixtures
                        )
            except UnknownFixture as exc:
                case["status"] = "skipped"
                case["reason"] = f"unsupported fixture {exc}"
                record["cases"].append(case)
                statuses.add("skipped")
                continue
            case_start = time.perf_counter()
            try:
                fn(**kwargs)
                case["status"] = "ok"
            except Exception as exc:
                case["status"] = "failed"
                case["error"] = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
            finally:
                patcher.undo()
            case["elapsed_s"] = round(time.perf_counter() - case_start, 4)
            if shim.stats.get("rounds"):
                case["mean_ms"] = round(shim.stats["mean"] * 1000.0, 3)
                case["min_ms"] = round(shim.stats["min"] * 1000.0, 3)
                case["rounds"] = shim.stats["rounds"]
            if shim.extra_info:
                case["extra_info"] = dict(shim.extra_info)
            record["cases"].append(case)
            statuses.add(case["status"])
    record["status"] = (
        "failed" if "failed" in statuses else "ok"
    )
    record["elapsed_s"] = round(time.perf_counter() - started, 3)
    record["timings"] = obs.build_timings(
        obs.since(marker), total_ms=(time.perf_counter() - started) * 1000.0
    )
    return record


# -------------------------------------------------------------- reporting


def machine_info() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def run_bench(
    suites: Optional[List[str]] = None,
    smoke: bool = False,
    warmup: int = 1,
    repeat: int = 3,
    name: Optional[str] = None,
    out_dir: str = ".",
) -> Tuple[str, dict]:
    """Run the selected suites and write ``BENCH_<name>.json``; returns
    ``(path, payload)``.  Unknown suite names raise ``ValueError``."""
    available = discover_suites()
    if smoke:
        selected = [s for s in SMOKE_SUITES if s in available]
        warmup, repeat = 0, 1
        name = name or "smoke"
    elif suites:
        unknown = sorted(set(suites) - set(available))
        if unknown:
            raise ValueError(
                f"unknown suite(s): {', '.join(unknown)} "
                f"(available: {', '.join(sorted(available))})"
            )
        selected = list(dict.fromkeys(suites))
        name = name or "_".join(selected)
    else:
        selected = sorted(available)
        name = name or "all"

    owner = not obs.enabled()
    if owner:
        obs.enable()
    started = time.perf_counter()
    overall = obs.mark()
    try:
        records = [
            run_suite(s, available[s], warmup=warmup, repeat=repeat)
            for s in selected
        ]
        total_ms = (time.perf_counter() - started) * 1000.0
        payload = {
            "schema_version": 1,
            "command": "bench",
            "name": name,
            "smoke": smoke,
            "warmup": warmup,
            "repeat": repeat,
            "machine": machine_info(),
            "suites": records,
            "totals": {
                "suites": len(records),
                "cases": sum(len(r["cases"]) for r in records),
                "failed": sum(
                    1 for r in records if r["status"] != "ok"
                ),
                "elapsed_s": round(total_ms / 1000.0, 3),
            },
            "timings": obs.build_timings(obs.since(overall), total_ms),
        }
    finally:
        if owner:
            obs.disable()
            obs.reset()
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    # Append, don't overwrite: the latest run stays at top level (the
    # keys consumers already assert on), and every run — including this
    # one — adds a compact timestamped entry to the additive ``history``
    # list, so the file accumulates a perf trajectory across commits.
    payload["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    history: list = []
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                history = list(json.load(handle).get("history") or ())
        except (OSError, ValueError):
            history = []  # corrupt/legacy file: start the trajectory fresh
    history.append(
        {
            "timestamp": payload["timestamp"],
            "totals": payload["totals"],
            "suites": {
                r["suite"]: {
                    "status": r["status"],
                    "elapsed_s": r["elapsed_s"],
                }
                for r in records
            },
        }
    )
    payload["history"] = history
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path, payload


def main(args) -> int:
    """CLI adapter for ``python -m repro bench`` (see repro.cli)."""
    if args.list:
        for suite, path in sorted(discover_suites().items()):
            print(f"{suite:<24} {path}")
        return 0
    try:
        path, payload = run_bench(
            suites=args.suite,
            smoke=args.smoke,
            warmup=args.warmup,
            repeat=args.repeat,
            name=args.name,
            out_dir=args.out_dir,
        )
    except (ValueError, FileNotFoundError) as exc:
        import sys

        print(f"error: {exc}", file=sys.stderr)
        return 2
    totals = payload["totals"]
    for record in payload["suites"]:
        marker = "ok" if record["status"] == "ok" else record["status"].upper()
        print(
            f"{record['suite']:<24} {marker:>7}  "
            f"{record['elapsed_s']:8.2f} s  "
            f"({len(record['cases'])} case(s))"
        )
    print(
        f"bench: {totals['suites']} suite(s), {totals['cases']} case(s), "
        f"{totals['failed']} failed, {totals['elapsed_s']:.2f} s -> {path}"
    )
    return 0
