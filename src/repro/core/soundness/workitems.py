"""Obligation work items: the generate / discharge split.

The soundness pipeline has two halves that used to be fused inside
``check_soundness``: *generating* proof obligations from a qualifier
definition, and *discharging* them with the prover.  This module
reifies the boundary as :class:`ObligationWorkItem` — a self-contained,
content-addressed description of one obligation — so the two halves can
run in different processes: the batch parent generates items, groups
them by environment digest (obligations sharing a digest can share one
:class:`repro.prover.session.ProverSession`), ships them to pool
workers, and re-assembles the streamed verdicts into ordinary
:class:`SoundnessReport` objects.

Outcomes cross the process boundary as plain dicts (pickle/JSON-safe);
:func:`result_from_outcome` reconstructs a faithful
:class:`ObligationResult` on the parent side, so an assembled report is
shaped exactly like a serially-computed one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.qualifiers.ast import QualifierDef, QualifierSet
from repro.core.soundness.obligations import Obligation, generate_obligations
from repro.harness.watchdog import NO_RETRY, Deadline, RetryPolicy
from repro.prover.prover import GAVE_UP, ProofResult
from repro.prover.terms import Formula


@dataclass(frozen=True)
class ObligationWorkItem:
    """One proof obligation, self-contained and fingerprinted.

    ``env_digest`` groups items whose proofs may share solver state (the
    proof-cache environment key: axioms + qualifier definition text);
    ``fingerprint`` is the obligation's own content address (the
    proof-cache obligation key), empty for trivial obligations.
    """

    unit: str
    qualifier: str
    index: int
    rule: str
    trivial: bool
    goal: Optional[Formula]
    context: str
    env_digest: str
    fingerprint: str

    @property
    def key(self) -> str:
        return f"{self.unit}|{self.qualifier}|{self.index}"

    def to_obligation(self) -> Obligation:
        return Obligation(
            qualifier=self.qualifier,
            rule=self.rule,
            goal=self.goal,
            trivial=self.trivial,
        )


def generate_work_items(
    qdef: QualifierDef,
    quals: QualifierSet,
    axioms,
    unit: str = "",
) -> List[ObligationWorkItem]:
    """The generate phase: one work item per obligation of ``qdef``."""
    from repro.cache import fingerprint

    env_digest = fingerprint.environment_key(
        list(axioms), context=qdef.source
    )
    items: List[ObligationWorkItem] = []
    for index, obligation in enumerate(generate_obligations(qdef, quals)):
        items.append(
            ObligationWorkItem(
                unit=unit,
                qualifier=qdef.name,
                index=index,
                rule=obligation.rule,
                trivial=obligation.trivial,
                goal=obligation.goal,
                context=qdef.source,
                env_digest=env_digest,
                fingerprint=(
                    ""
                    if obligation.trivial
                    else fingerprint.obligation_key(obligation.goal)
                ),
            )
        )
    return items


def discharge_work_item(
    item: ObligationWorkItem,
    axioms,
    session=None,
    max_rounds: int = 6,
    time_limit: float = 45.0,
    retry: RetryPolicy = NO_RETRY,
    deadline: Optional[Deadline] = None,
    cache=None,
    explain: bool = True,
) -> Dict:
    """The discharge phase: prove one item, returning an outcome dict.

    ``session`` (a :class:`repro.prover.session.ProverSession`) must
    match ``item.env_digest`` when given; pass None for the cold path
    (``explain`` then picks the fresh prover's conflict-core strategy).
    The fault-handling contract is ``check_soundness``'s: exceptions
    become CRASH outcomes, expired deadlines TIMEOUT outcomes.
    """
    from repro.core.soundness.checker import discharge_obligation

    result = discharge_obligation(
        item.to_obligation(),
        item.context,
        axioms,
        session=session,
        max_rounds=max_rounds,
        time_limit=time_limit,
        retry=retry,
        deadline=deadline,
        cache=cache,
        explain=explain,
    )
    return outcome_from_result(item, result)


def proof_result_to_dict(result: Optional[ProofResult]) -> Optional[Dict]:
    """Flatten one ProofResult into a pickle/JSON-safe dict (the
    ``proof`` field of an outcome; also the payload the serve dedup
    table shares between in-flight requests)."""
    if result is None:
        return None
    proof = result.to_cache_payload()
    proof["elapsed"] = result.elapsed
    proof["cached"] = result.cached
    return proof


def proof_result_from_dict(proof: Optional[Dict]) -> Optional[ProofResult]:
    """Reconstruct the ProofResult a proof dict came from."""
    if proof is None:
        return None
    return ProofResult(
        proved=bool(proof.get("proved")),
        rounds=int(proof.get("rounds", 0)),
        instances=int(proof.get("instances", 0)),
        conflicts=int(proof.get("conflicts", 0)),
        elapsed=float(proof.get("elapsed", 0.0)),
        reason=str(proof.get("reason", "")),
        verdict=str(proof.get("verdict", GAVE_UP)),
        attempts=int(proof.get("attempts", 1)),
        cached=bool(proof.get("cached")),
        countermodel=[str(f) for f in proof.get("countermodel", ())],
    )


def outcome_from_result(item: ObligationWorkItem, entry) -> Dict:
    """Flatten an ObligationResult into a pickle/JSON-safe dict."""
    proof = proof_result_to_dict(entry.result)
    return {
        "key": item.key,
        "unit": item.unit,
        "qualifier": item.qualifier,
        "index": item.index,
        "rule": item.rule,
        "trivial": item.trivial,
        "verdict": entry.verdict,
        "proved": entry.proved,
        "error": entry.error,
        "proof": proof,
    }


def result_from_outcome(item: ObligationWorkItem, outcome: Dict):
    """Reconstruct the ObligationResult an outcome dict came from."""
    from repro.core.soundness.checker import ObligationResult

    result = proof_result_from_dict(outcome.get("proof"))
    return ObligationResult(
        item.to_obligation(), result, error=outcome.get("error", "")
    )


def assemble_report(
    qdef: QualifierDef,
    quals: QualifierSet,
    items: List[ObligationWorkItem],
    outcomes: Dict[str, Dict],
    elapsed: float = 0.0,
):
    """Re-assemble a :class:`SoundnessReport` from discharged outcomes.

    ``items`` are this qualifier's work items in generation order;
    ``outcomes`` maps item keys to outcome dicts.  The result is shaped
    exactly like a report from the serial ``check_soundness`` path.
    """
    from repro.core.qualifiers.validate import validate_definition
    from repro.core.soundness.checker import SoundnessReport

    report = SoundnessReport(qualifier=qdef.name)
    report.lint = validate_definition(qdef, quals)
    for item in sorted(items, key=lambda i: i.index):
        report.results.append(result_from_outcome(item, outcomes[item.key]))
    report.elapsed = elapsed
    return report
