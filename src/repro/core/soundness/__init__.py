"""The automated soundness checker (paper section 4).

Takes a qualifier definition, generates one proof obligation per type
rule (case clauses for value qualifiers; assign/ondecl establishment
plus a preservation obligation for reference qualifiers), and
discharges them with the Simplify-style prover.  A rule whose
obligation cannot be proven is reported as potentially unsound — e.g.
the paper's ``E1 - E2`` mutation of ``pos``, or ``unique`` without its
``disallow`` clause.
"""

from repro.core.soundness.axioms import semantics_axioms
from repro.core.soundness.checker import (
    Obligation,
    ObligationResult,
    SoundnessReport,
    check_all_soundness,
    check_soundness,
)
from repro.core.soundness.obligations import generate_obligations

__all__ = [
    "semantics_axioms",
    "Obligation",
    "ObligationResult",
    "SoundnessReport",
    "check_soundness",
    "check_all_soundness",
    "generate_obligations",
]
