"""Axioms formalizing the dynamic semantics of the CIL subset
(paper section 4.1).

The execution state ρ = (π, ι, ε, σ) is an opaque term; ``getStore``,
``getEnv`` and ``getStmt`` project it.  Program syntax is reified with
function symbols (``var(x)``, ``deref(e)``, ``assign(lv, e)``, ...), and
``evalExpr``/``location``/``stepState`` give it meaning.  ``NULL`` is
the integer 0.

Like the paper, we elide *typing predicates* — side conditions the type
system guarantees — by building them into the axioms and into the
hypotheses the obligation generator emits (e.g. "the location of a
variable is not a heap location", "distinct variables have distinct
locations").  The paper states explicitly that its Simplify encoding
does the same (section 4, footnote 2).
"""

from __future__ import annotations

from typing import List

from repro.prover.terms import (
    And,
    Eq,
    ForAll,
    Formula,
    Implies,
    Int,
    Le,
    Lt,
    Not,
    Or,
    Pr,
    TApp,
    Term,
    TVar,
    fn,
)

# ----------------------------------------------------------- reified syntax
# Expressions.


def const_expr(c: Term) -> Term:
    return fn("constE", c)


def lval_expr(lv: Term) -> Term:
    """Reading an l-value in expression position."""
    return fn("readE", lv)


def addr_expr(lv: Term) -> Term:
    return fn("addrE", lv)


def unop_expr(op: str, e: Term) -> Term:
    return fn(f"unop_{_mangle(op)}E", e)


def binop_expr(op: str, e1: Term, e2: Term) -> Term:
    return fn(f"binop_{_mangle(op)}E", e1, e2)


_OP_NAMES = {
    "*": "mult", "/": "div", "+": "add", "-": "sub", "%": "mod",
    "<<": "shl", ">>": "shr", "&": "band", "^": "bxor", "!": "lnot",
    "~": "bnot", "==": "eq", "!=": "ne", "<": "lt", ">": "gt",
    "<=": "le", ">=": "ge", "&&": "land", "||": "lor",
}


def _mangle(op: str) -> str:
    return _OP_NAMES.get(op, f"op{abs(hash(op)) % 1000}")


# L-values.


def var_lv(x: Term) -> Term:
    return fn("varL", x)


def deref_lv(e: Term) -> Term:
    return fn("derefL", e)


# Statements.


def assign_stmt(lv: Term, e: Term) -> Term:
    return fn("assign", lv, e)


def assign_new_stmt(lv: Term) -> Term:
    return fn("assignNew", lv)


# Semantic functions.


def eval_expr(rho: Term, e: Term) -> Term:
    return fn("evalExpr", rho, e)


def location(rho: Term, lv: Term) -> Term:
    return fn("location", rho, lv)


def get_store(rho: Term) -> Term:
    return fn("getStore", rho)


def get_env(rho: Term) -> Term:
    return fn("getEnv", rho)


def get_stmt(rho: Term) -> Term:
    return fn("getStmt", rho)


def step_state(rho: Term) -> Term:
    return fn("stepState", rho)


def select(m: Term, k: Term) -> Term:
    return fn("select", m, k)


def store(m: Term, k: Term, v: Term) -> Term:
    return fn("store", m, k, v)


def new_val(rho: Term) -> Term:
    """The fresh heap location produced by an allocation in ρ."""
    return fn("newVal", rho)


def is_heap_loc(v: Term) -> Formula:
    return Pr("isHeapLoc", (v,))


NULL: Term = Int(0)


# ------------------------------------------------------------------- axioms


def semantics_axioms() -> List[Formula]:
    """The axiom set handed to the prover for every obligation."""
    rho = TVar("rho")
    e = TVar("e")
    e1, e2 = TVar("e1"), TVar("e2")
    lv = TVar("lv")
    c = TVar("c")
    x, y = TVar("x"), TVar("y")
    m, k, j, v = TVar("m"), TVar("k"), TVar("j"), TVar("v")
    p = TVar("p")

    axioms: List[Formula] = []

    # --- McCarthy select/store.
    axioms.append(
        ForAll(("m", "k", "v"), Eq(select(store(m, k, v), k), v))
    )
    axioms.append(
        ForAll(
            ("m", "k", "j", "v"),
            Implies(
                Not(Eq(k, j)),
                Eq(select(store(m, k, v), j), select(m, j)),
            ),
            triggers=((select(store(m, k, v), j),),),
        )
    )

    # --- Evaluation of expressions (section 4.1's evalExpr axioms).
    axioms.append(
        ForAll(
            ("rho", "c"),
            Eq(eval_expr(rho, const_expr(c)), c),
            triggers=((eval_expr(rho, const_expr(c)),),),
        )
    )
    axioms.append(
        ForAll(
            ("rho", "lv"),
            Eq(
                eval_expr(rho, lval_expr(lv)),
                select(get_store(rho), location(rho, lv)),
            ),
            triggers=((eval_expr(rho, lval_expr(lv)),),),
        )
    )
    axioms.append(
        ForAll(
            ("rho", "lv"),
            Eq(eval_expr(rho, addr_expr(lv)), location(rho, lv)),
            triggers=((eval_expr(rho, addr_expr(lv)),),),
        )
    )
    # Arithmetic operators with exact semantics.
    axioms.append(
        ForAll(
            ("rho", "e1", "e2"),
            Eq(
                eval_expr(rho, binop_expr("*", e1, e2)),
                fn("*", eval_expr(rho, e1), eval_expr(rho, e2)),
            ),
            triggers=((eval_expr(rho, binop_expr("*", e1, e2)),),),
        )
    )
    for op in ("+", "-"):
        axioms.append(
            ForAll(
                ("rho", "e1", "e2"),
                Eq(
                    eval_expr(rho, binop_expr(op, e1, e2)),
                    fn(op, eval_expr(rho, e1), eval_expr(rho, e2)),
                ),
                triggers=((eval_expr(rho, binop_expr(op, e1, e2)),),),
            )
        )
    axioms.append(
        ForAll(
            ("rho", "e"),
            Eq(
                eval_expr(rho, unop_expr("-", e)),
                fn("-", Int(0), eval_expr(rho, e)),
            ),
            triggers=((eval_expr(rho, unop_expr("-", e)),),),
        )
    )
    # Division: characterized only when it appears (value qualifiers do
    # not define rules whose soundness depends on exact division, and
    # Simplify's arithmetic was similarly partial).  We give the sign
    # property needed for completeness experiments: nothing.

    # --- Locations.
    axioms.append(
        ForAll(
            ("rho", "x"),
            Eq(location(rho, var_lv(x)), select(get_env(rho), x)),
            triggers=((location(rho, var_lv(x)),),),
        )
    )
    axioms.append(
        ForAll(
            ("rho", "e"),
            Eq(location(rho, deref_lv(e)), eval_expr(rho, e)),
            triggers=((location(rho, deref_lv(e)),),),
        )
    )
    # Valid l-values have non-NULL addresses (the address-of rule for
    # nonnull depends on this; the paper's logical memory model makes
    # the same assumption).
    axioms.append(
        ForAll(
            ("rho", "lv"),
            Not(Eq(location(rho, lv), NULL)),
            triggers=((location(rho, lv),),),
        )
    )
    # Typing predicate: a variable's location is never a heap location
    # (variables live in globals or on the stack).
    axioms.append(
        ForAll(
            ("rho", "x"),
            Not(is_heap_loc(location(rho, var_lv(x)))),
            triggers=((location(rho, var_lv(x)),),),
        )
    )
    # Environments are injective: distinct variables, distinct locations.
    axioms.append(
        ForAll(
            ("rho", "x", "y"),
            Implies(
                Not(Eq(x, y)),
                Not(Eq(location(rho, var_lv(x)), location(rho, var_lv(y)))),
            ),
            triggers=(
                (location(rho, var_lv(x)), location(rho, var_lv(y))),
            ),
        )
    )
    # NULL is not a heap location.
    axioms.append(Not(is_heap_loc(NULL)))

    # --- State stepping: ordinary assignment.  Stated directly in
    # select form (what the written cell and every other cell contain
    # after the step) so purely syntactic E-matching can chain the
    # instances; Simplify's E-graph matching gets the same effect with
    # the store() form.
    axioms.append(
        ForAll(
            ("rho", "lv", "e"),
            Implies(
                Eq(get_stmt(rho), assign_stmt(lv, e)),
                Eq(
                    select(get_store(step_state(rho)), location(rho, lv)),
                    eval_expr(rho, e),
                ),
            ),
            triggers=((assign_stmt(lv, e), step_state(rho)),),
        )
    )
    axioms.append(
        ForAll(
            ("rho", "lv", "e", "p"),
            Implies(
                And(
                    Eq(get_stmt(rho), assign_stmt(lv, e)),
                    Not(Eq(p, location(rho, lv))),
                ),
                Eq(
                    select(get_store(step_state(rho)), p),
                    select(get_store(rho), p),
                ),
            ),
            triggers=(
                (select(get_store(step_state(rho)), p), assign_stmt(lv, e)),
            ),
        )
    )
    # Allocation assignment: stores a fresh heap location.
    axioms.append(
        ForAll(
            ("rho", "lv"),
            Implies(
                Eq(get_stmt(rho), assign_new_stmt(lv)),
                Eq(
                    select(get_store(step_state(rho)), location(rho, lv)),
                    new_val(rho),
                ),
            ),
            triggers=((assign_new_stmt(lv), step_state(rho)),),
        )
    )
    axioms.append(
        ForAll(
            ("rho", "lv", "p"),
            Implies(
                And(
                    Eq(get_stmt(rho), assign_new_stmt(lv)),
                    Not(Eq(p, location(rho, lv))),
                ),
                Eq(
                    select(get_store(step_state(rho)), p),
                    select(get_store(rho), p),
                ),
            ),
            triggers=(
                (select(get_store(step_state(rho)), p), assign_new_stmt(lv)),
            ),
        )
    )
    axioms.append(
        ForAll(("rho",), is_heap_loc(new_val(rho)), triggers=((new_val(rho),),))
    )
    # Freshness: the new location is referenced from nowhere in the old
    # store...
    axioms.append(
        ForAll(
            ("rho", "p"),
            Not(Eq(select(get_store(rho), p), new_val(rho))),
            triggers=((select(get_store(rho), p), new_val(rho)),),
        )
    )
    # ... and is distinct from every existing l-value's address.
    axioms.append(
        ForAll(
            ("rho", "lv"),
            Not(Eq(location(rho, lv), new_val(rho))),
            triggers=((location(rho, lv), new_val(rho)),),
        )
    )

    # --- The environment (hence every l-value's address) is unchanged
    # by a step.  (A model simplification matching the paper's: location
    # is stable across the assignments the obligations quantify over.)
    axioms.append(
        ForAll(
            ("rho",),
            Eq(get_env(step_state(rho)), get_env(rho)),
            triggers=((get_env(step_state(rho)),),),
        )
    )
    axioms.append(
        ForAll(
            ("rho", "lv"),
            Eq(location(step_state(rho), lv), location(rho, lv)),
            triggers=((location(step_state(rho), lv),),),
        )
    )

    return axioms
