"""Soundness-checker driver: generate obligations, discharge with the
prover, and report per-rule results (paper section 4)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.qualifiers.ast import QualifierDef, QualifierSet
from repro.core.soundness.axioms import semantics_axioms
from repro.core.soundness.obligations import Obligation, generate_obligations
from repro.prover.prover import ProofResult, Prover


@dataclass
class ObligationResult:
    obligation: Obligation
    result: Optional[ProofResult]  # None for trivial obligations

    @property
    def proved(self) -> bool:
        return self.obligation.trivial or (
            self.result is not None and self.result.proved
        )

    def __str__(self) -> str:
        if self.obligation.trivial:
            return f"{self.obligation}: trivially sound (no invariant)"
        return f"{self.obligation}: {self.result}"

    def explain_failure(self, max_facts: int = 12) -> str:
        """A readable account of why the rule was rejected, from the
        prover's candidate countermodel."""
        if self.proved:
            return "obligation proved; nothing to explain"
        lines = [f"rule not proven: {self.obligation.rule}"]
        # NB: ProofResult.__bool__ is `proved`, so test identity.
        facts = self.result.countermodel if self.result is not None else []
        if facts:
            lines.append("a scenario the rule fails to exclude:")
            shown = [f for f in facts if not f.startswith("¬")][:max_facts]
            shown += [f for f in facts if f.startswith("¬")][
                : max(0, max_facts - len(shown))
            ]
            lines.extend(f"  {fact}" for fact in shown)
        return "\n".join(lines)


@dataclass
class SoundnessReport:
    qualifier: str
    results: List[ObligationResult] = field(default_factory=list)
    elapsed: float = 0.0
    # Definition-level lint findings (see qualifiers.validate); these do
    # not affect soundness but usually explain why a proof failed.
    lint: List[str] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        return all(r.proved for r in self.results)

    @property
    def failures(self) -> List[ObligationResult]:
        return [r for r in self.results if not r.proved]

    def summary(self) -> str:
        verdict = "SOUND" if self.sound else "POTENTIALLY UNSOUND"
        lines = [
            f"qualifier {self.qualifier}: {verdict} "
            f"({len(self.results)} obligation(s), {self.elapsed:.2f} s)"
        ]
        lines.extend(f"  {r}" for r in self.results)
        lines.extend(f"  note: {p}" for p in self.lint)
        return "\n".join(lines)


def check_soundness(
    qdef: QualifierDef,
    quals: Optional[QualifierSet] = None,
    max_rounds: int = 6,
    time_limit: float = 45.0,
) -> SoundnessReport:
    """Prove every obligation of one qualifier definition.

    ``quals`` supplies the definitions of qualifiers referenced by
    ``qdef``'s rules (their invariants are needed, section 4.2); it
    defaults to a set containing only ``qdef``.
    """
    if quals is None:
        quals = QualifierSet([qdef])
    elif qdef.name not in quals:
        quals = QualifierSet(list(quals) + [qdef])
    start = time.perf_counter()
    report = SoundnessReport(qualifier=qdef.name)
    from repro.core.qualifiers.validate import validate_definition

    report.lint = validate_definition(qdef, quals)
    axioms = semantics_axioms()
    for obligation in generate_obligations(qdef, quals):
        if obligation.trivial:
            report.results.append(ObligationResult(obligation, None))
            continue
        prover = Prover(max_rounds=max_rounds, time_limit=time_limit)
        prover.add_axioms(axioms)
        result = prover.prove(obligation.goal)
        report.results.append(ObligationResult(obligation, result))
    report.elapsed = time.perf_counter() - start
    return report


def check_all_soundness(
    quals: QualifierSet, **kwargs
) -> Dict[str, SoundnessReport]:
    """Soundness-check every qualifier in a set (definitions may be
    mutually recursive; each proof may use all the others' invariants)."""
    return {q.name: check_soundness(q, quals, **kwargs) for q in quals}
