"""Soundness-checker driver: generate obligations, discharge with the
prover, and report per-rule results (paper section 4)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import faults, obs
from repro.core.qualifiers.ast import QualifierDef, QualifierSet
from repro.core.soundness.axioms import semantics_axioms
from repro.core.soundness.obligations import Obligation, generate_obligations
from repro.harness.watchdog import (
    NO_RETRY,
    Deadline,
    RetryPolicy,
    recursion_guard,
)
from repro.prover.prover import GAVE_UP, TIMEOUT, ProofResult, Prover


@dataclass
class ObligationResult:
    obligation: Obligation
    result: Optional[ProofResult]  # None for trivial obligations
    # Non-empty when discharging this obligation crashed the prover
    # (the exception is recorded, the remaining obligations still run).
    error: str = ""

    @property
    def proved(self) -> bool:
        return (
            not self.error
            and (
                self.obligation.trivial
                or (self.result is not None and self.result.proved)
            )
        )

    @property
    def verdict(self) -> str:
        if self.error:
            return "CRASH"
        if self.obligation.trivial:
            return "PROVED"
        return self.result.verdict if self.result is not None else GAVE_UP

    def __str__(self) -> str:
        if self.error:
            return f"{self.obligation}: CRASH ({self.error})"
        if self.obligation.trivial:
            return f"{self.obligation}: trivially sound (no invariant)"
        return f"{self.obligation}: {self.result}"

    def explain_failure(self, max_facts: Optional[int] = None) -> str:
        """A readable account of why the rule was rejected, from the
        prover's candidate countermodel.

        Every fact is shown by default — a scenario with bindings
        missing (e.g. for variables introduced only by ``extra``
        axioms) is not replayable.  Passing ``max_facts`` truncates,
        but then says how many facts were left out."""
        if self.proved:
            return "obligation proved; nothing to explain"
        lines = [f"rule not proven: {self.obligation.rule}"]
        # NB: ProofResult.__bool__ is `proved`, so test identity.
        facts = self.result.countermodel if self.result is not None else []
        if facts:
            lines.append("a scenario the rule fails to exclude:")
            ordered = [f for f in facts if not f.startswith("¬")]
            ordered += [f for f in facts if f.startswith("¬")]
            shown = ordered if max_facts is None else ordered[:max_facts]
            lines.extend(f"  {fact}" for fact in shown)
            omitted = len(ordered) - len(shown)
            if omitted > 0:
                lines.append(f"  ... ({omitted} more fact(s) omitted)")
        return "\n".join(lines)


@dataclass
class SoundnessReport:
    qualifier: str
    results: List[ObligationResult] = field(default_factory=list)
    elapsed: float = 0.0
    # Definition-level lint findings (see qualifiers.validate); these do
    # not affect soundness but usually explain why a proof failed.
    lint: List[str] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        return all(r.proved for r in self.results)

    @property
    def failures(self) -> List[ObligationResult]:
        return [r for r in self.results if not r.proved]

    def summary(self) -> str:
        verdict = "SOUND" if self.sound else "POTENTIALLY UNSOUND"
        lines = [
            f"qualifier {self.qualifier}: {verdict} "
            f"({len(self.results)} obligation(s), {self.elapsed:.2f} s)"
        ]
        lines.extend(f"  {r}" for r in self.results)
        lines.extend(f"  note: {p}" for p in self.lint)
        return "\n".join(lines)

    @property
    def cached_count(self) -> int:
        """How many obligations were replayed from the proof cache."""
        return sum(
            1
            for r in self.results
            if r.result is not None and r.result.cached
        )

    def to_dict(self) -> Dict:
        """JSON-ready shape for ``--format json`` reports."""
        return {
            "qualifier": self.qualifier,
            "sound": self.sound,
            "elapsed": self.elapsed,
            "obligations": [
                {
                    "rule": r.obligation.rule,
                    "verdict": r.verdict,
                    "proved": r.proved,
                    "reason": (
                        r.error
                        if r.error
                        else (r.result.reason if r.result is not None else "")
                    ),
                    "elapsed": r.result.elapsed if r.result is not None else 0.0,
                    "cached": r.result.cached if r.result is not None else False,
                    # Complete countermodel for unproved obligations
                    # (additive; absent when there is nothing to show).
                    **(
                        {"countermodel": list(r.result.countermodel)}
                        if (
                            not r.proved
                            and r.result is not None
                            and r.result.countermodel
                        )
                        else {}
                    ),
                }
                for r in self.results
            ],
            "lint": list(self.lint),
        }


def discharge_obligation(
    obligation: Obligation,
    context: str,
    axioms,
    session=None,
    max_rounds: int = 6,
    time_limit: float = 45.0,
    retry: RetryPolicy = NO_RETRY,
    deadline: Optional[Deadline] = None,
    cache=None,
    explain: bool = True,
) -> ObligationResult:
    """Discharge one obligation — the single prover entry point shared
    by the serial path and the sharded obligation scheduler.

    ``context`` is the qualifier definition's source text (folded into
    the proof-cache environment key).  ``session`` is an optional
    :class:`repro.prover.session.ProverSession` for the obligation's
    axiom environment; when absent a fresh prover is built, which is
    the behavior ``--no-session`` restores.  ``explain`` selects
    proof-forest conflict cores for that fresh prover (``False`` is the
    ``--no-explain`` ddmin ablation; a supplied session carries its own
    setting).
    """
    if obligation.trivial:
        return ObligationResult(obligation, None)
    deadline = deadline or Deadline(None)
    if deadline.expired():
        return ObligationResult(
            obligation,
            ProofResult(proved=False, reason="time limit", verdict=TIMEOUT),
        )
    # Chaos site: an injected stall standing in for a prover whose
    # budget estimate was wildly off (cooperates with the deadline).
    faults.maybe_slow_prover(
        f"{obligation.qualifier}:{obligation.rule}", deadline=deadline
    )
    try:
        with recursion_guard():
            if session is not None:
                result = session.prove_with_retry(
                    obligation.goal,
                    retry=retry,
                    deadline=deadline,
                    cache=cache,
                    cache_context=context,
                    max_rounds=max_rounds,
                    time_limit=time_limit,
                )
            else:
                prover = Prover(
                    max_rounds=max_rounds,
                    time_limit=time_limit,
                    explain=explain,
                )
                prover.add_axioms(axioms)
                result = prover.prove_with_retry(
                    obligation.goal,
                    retry=retry,
                    deadline=deadline,
                    cache=cache,
                    cache_context=context,
                )
        return ObligationResult(obligation, result)
    except (RecursionError, MemoryError) as exc:
        return ObligationResult(obligation, None, error=type(exc).__name__)
    except Exception as exc:  # prover bug: survive, report, continue
        return ObligationResult(
            obligation, None, error=f"{type(exc).__name__}: {exc}"
        )


def _discharge_shared(
    dedup, env_key: str, obligation: Obligation, time_limit: float, discharge
):
    """Single-flight one obligation through a cross-request dedup table.

    ``dedup`` is an object with the :class:`repro.serve.dedup.
    ObligationDedup` contract (``acquire``/``wait``/``publish``), keyed
    by ``(environment key, obligation fingerprint)`` — the same pair
    the proof cache addresses by.  The first request to reach a key
    becomes the *leader* and proves it; concurrent requests for the
    same key wait for the leader's settled (PROVED/REFUTED) payload
    instead of re-proving.  An unsettled or crashed leader publishes
    ``None`` and the waiter falls back to proving for itself, so
    sharing can never change a verdict.
    """
    from repro.cache import fingerprint as _fp
    from repro.core.soundness import workitems as _workitems

    key = (env_key, _fp.obligation_key(obligation.goal))
    role, ticket = dedup.acquire(key)
    if role != "leader":
        payload = dedup.wait(ticket, timeout=time_limit + 30.0)
        if payload is not None:
            return ObligationResult(
                obligation, _workitems.proof_result_from_dict(payload)
            )
        return discharge()
    try:
        entry = discharge()
    except BaseException:
        dedup.publish(key, None)  # never strand the waiters
        raise
    payload = None
    if (
        not entry.error
        and entry.result is not None
        and entry.result.verdict in ("PROVED", "REFUTED")
    ):
        payload = _workitems.proof_result_to_dict(entry.result)
    dedup.publish(key, payload)
    return entry


def check_soundness(
    qdef: QualifierDef,
    quals: Optional[QualifierSet] = None,
    max_rounds: int = 6,
    time_limit: float = 45.0,
    retry: RetryPolicy = NO_RETRY,
    deadline: Optional[Deadline] = None,
    cache=None,
    on_result=None,
    sessions=None,
    explain: bool = True,
    dedup=None,
) -> SoundnessReport:
    """Prove every obligation of one qualifier definition.

    ``quals`` supplies the definitions of qualifiers referenced by
    ``qdef``'s rules (their invariants are needed, section 4.2); it
    defaults to a set containing only ``qdef``.

    Each obligation is an isolated unit of work: ``time_limit`` bounds
    every proof attempt, ``deadline`` (if given) additionally caps the
    whole report, ``retry`` re-attempts ``GAVE_UP`` results with
    escalated budgets, and an exception from the prover is recorded as
    a ``CRASH`` on that obligation while the rest still run.

    ``cache`` (a :class:`repro.cache.ProofCache`) is consulted before
    any prover work per obligation; the qualifier definition's
    normalized source text is folded into the environment key, so an
    edited definition can never replay its old verdicts.

    ``on_result`` (if given) is called with each
    :class:`ObligationResult` the moment it settles — the streaming
    hook the batch pipeline uses to report per-obligation progress
    while the report is still being built.  Callback errors are
    swallowed: progress reporting must never change a verdict.

    ``sessions`` enables incremental prover sessions: pass a
    :class:`repro.prover.session.SessionPool` to share solver state
    across calls, or ``True`` for a pool local to this call.  Learned
    theory conflicts, the encoded axiom base, and E-matching triggers
    are then reused across the obligations of this qualifier's axiom
    environment (see docs/architecture.md, "obligation lifecycle");
    PROVED/REFUTED verdicts are unaffected by design.

    ``explain`` selects explanation-producing conflict cores (the
    proof-forest engine); ``False`` falls back to search-based ddmin
    minimization.  Verdicts are identical either way — the flag trades
    core-finding strategies, not logic.

    ``dedup`` (an :class:`repro.serve.dedup.ObligationDedup`-shaped
    object, or None) single-flights obligation discharge across
    concurrent callers: two requests proving the same obligation under
    the same axiom environment share one prover run in flight, not just
    through the proof cache after the fact.  Only settled
    PROVED/REFUTED results are shared.
    """
    if quals is None:
        quals = QualifierSet([qdef])
    elif qdef.name not in quals:
        quals = QualifierSet(list(quals) + [qdef])
    start = time.perf_counter()
    deadline = deadline or Deadline(None)
    report = SoundnessReport(qualifier=qdef.name)
    from repro.core.qualifiers.validate import validate_definition

    report.lint = validate_definition(qdef, quals)
    axioms = semantics_axioms()
    with obs.span("obligations", qualifier=qdef.name):
        obligations = list(generate_obligations(qdef, quals))
    obs.incr("soundness.obligations", len(obligations))

    def settle(entry: ObligationResult) -> None:
        report.results.append(entry)
        if on_result is not None:
            try:
                on_result(entry)
            except Exception:
                pass

    session = None
    if sessions is not None and sessions is not False:
        from repro.prover.session import SessionPool

        pool = sessions if isinstance(sessions, SessionPool) else SessionPool()
        session = pool.get(
            axioms,
            context=qdef.source,
            max_rounds=max_rounds,
            time_limit=time_limit,
            explain=explain,
        )
    dedup_env = None
    if dedup is not None:
        from repro.cache import fingerprint as _fp

        dedup_env = _fp.environment_key(list(axioms), context=qdef.source)
    for obligation in obligations:
        def discharge(_obligation=obligation):
            return discharge_obligation(
                _obligation,
                qdef.source,
                axioms,
                session=session,
                max_rounds=max_rounds,
                time_limit=time_limit,
                retry=retry,
                deadline=deadline,
                cache=cache,
                explain=explain,
            )

        if dedup is None or obligation.trivial or obligation.goal is None:
            settle(discharge())
        else:
            settle(
                _discharge_shared(
                    dedup, dedup_env, obligation, time_limit, discharge
                )
            )
    report.elapsed = time.perf_counter() - start
    return report


def check_all_soundness(
    quals: QualifierSet, **kwargs
) -> Dict[str, SoundnessReport]:
    """Soundness-check every qualifier in a set (definitions may be
    mutually recursive; each proof may use all the others' invariants)."""
    return {q.name: check_soundness(q, quals, **kwargs) for q in quals}
