"""Proof-obligation generation (paper section 4.2).

For a *value* qualifier, each ``case`` clause yields one obligation: if
an expression matches the clause's pattern and its predicate holds in an
arbitrary execution state ρ, the qualifier's invariant holds for the
expression in ρ.  (``restrict`` clauses do not affect soundness and are
ignored, section 2.1.3.)

For a *reference* qualifier:

* each ``assign`` clause yields an *establishment* obligation — after
  executing an assignment of that shape to the qualified l-value, the
  invariant holds;
* ``ondecl`` yields an establishment obligation from declaration
  freshness;
* one *preservation* obligation per right-hand-side form of the pattern
  grammar shows the invariant survives an arbitrary assignment to some
  *other* l-value, where the forms are those consistent with the
  qualifier's ``disallow`` clause (section 2.2.3).  Omitting a needed
  disallow re-admits the form that breaks the proof — e.g. without
  ``disallow L``, the "read of an l-value" case may read the unique
  l-value itself, and the obligation correctly fails.

Typing predicates (side conditions guaranteed by the base type system,
which the paper's Simplify encoding elides, footnote 2) appear here as
explicit hypotheses: integer-typed results are not heap locations and
differ from the qualified l-value's address; constants of pointer type
are NULL; l-values excluded by ``disallow`` have addresses different
from the qualified l-value's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.qualifiers import ast as Q
from repro.core.qualifiers.ast import QualifierDef, QualifierSet
from repro.core.soundness import axioms as S
from repro.prover.terms import (
    And,
    Eq,
    ForAll,
    Formula,
    Implies,
    Int,
    Le,
    Lt,
    Not,
    Or,
    TRUE,
    TVar,
    Term,
    fn,
)


class ObligationError(Exception):
    """The qualifier definition cannot be translated to obligations
    (e.g. its invariant uses location() on an Expr-classified subject)."""


@dataclass
class Obligation:
    qualifier: str
    rule: str  # human-readable description of the rule being verified
    goal: Formula
    trivial: bool = False  # no invariant: vacuously sound

    def __str__(self) -> str:
        status = " (trivial)" if self.trivial else ""
        return f"[{self.qualifier}] {self.rule}{status}"


RHO = TVar("rho")


# ---------------------------------------------------------------- invariants


def value_invariant(
    qdef: QualifierDef, rho: Term, expr_term: Term
) -> Optional[Formula]:
    """The invariant of a value qualifier, as a predicate of (ρ, e)."""
    if qdef.invariant is None:
        return None
    return _translate_inv(
        qdef.invariant,
        value_term=S.eval_expr(rho, expr_term),
        location_term=None,
        store_term=S.get_store(rho),
        subject=qdef.var,
    )


def ref_invariant(qdef: QualifierDef, rho: Term, lv_term: Term) -> Optional[Formula]:
    """The invariant of a reference qualifier, as a predicate of (ρ, l)."""
    if qdef.invariant is None:
        return None
    loc = S.location(rho, lv_term)
    return _translate_inv(
        qdef.invariant,
        value_term=S.select(S.get_store(rho), loc),
        location_term=loc,
        store_term=S.get_store(rho),
        subject=qdef.var,
    )


def _translate_inv(
    f: Q.IFormula,
    value_term: Term,
    location_term: Optional[Term],
    store_term: Term,
    subject: str,
) -> Formula:
    def term(t: Q.ITerm) -> Term:
        if isinstance(t, Q.IValue):
            if t.var != subject:
                raise ObligationError(f"value({t.var}) does not name the subject")
            return value_term
        if isinstance(t, Q.ILocation):
            if location_term is None:
                raise ObligationError(
                    "location() is only meaningful for reference qualifiers"
                )
            if t.var != subject:
                raise ObligationError(f"location({t.var}) does not name the subject")
            return location_term
        if isinstance(t, Q.IDeref):
            return S.select(store_term, term(t.operand))
        if isinstance(t, Q.IVar):
            return TVar(t.name)
        if isinstance(t, Q.INum):
            return Int(t.value)
        if isinstance(t, Q.INull):
            return S.NULL
        if isinstance(t, Q.IBin):
            # '+', '-', '*' are interpreted by the prover; '/' and '%'
            # are uninterpreted symbols constrained by the Euclidean
            # division lemmas the prover instantiates per ground term.
            return fn(t.op, term(t.left), term(t.right))
        raise ObligationError(f"unknown invariant term {t!r}")

    def formula(g: Q.IFormula) -> Formula:
        if isinstance(g, Q.ICmp):
            left, right = term(g.left), term(g.right)
            ops = {
                "==": lambda: Eq(left, right),
                "!=": lambda: Not(Eq(left, right)),
                "<": lambda: Lt(left, right),
                ">": lambda: Lt(right, left),
                "<=": lambda: Le(left, right),
                ">=": lambda: Le(right, left),
            }
            return ops[g.op]()
        if isinstance(g, Q.IIsHeapLoc):
            return S.is_heap_loc(term(g.operand))
        if isinstance(g, Q.IAnd):
            return And(formula(g.left), formula(g.right))
        if isinstance(g, Q.IOr):
            return Or(formula(g.left), formula(g.right))
        if isinstance(g, Q.INot):
            return Not(formula(g.operand))
        if isinstance(g, Q.IImplies):
            return Implies(formula(g.left), formula(g.right))
        if isinstance(g, Q.IForall):
            body = formula(g.body)
            trig = ((S.select(store_term, TVar(g.var)),),)
            return ForAll((g.var,), body, triggers=trig)
        raise ObligationError(f"unknown invariant formula {g!r}")

    return formula(f)


# ----------------------------------------------------- pattern symbolization


@dataclass
class _SymbolEnv:
    """Maps clause pattern variables to symbolic terms."""

    qdef: QualifierDef
    decls: Dict[str, Q.VarDecl] = field(default_factory=dict)
    qvars: List[str] = field(default_factory=list)

    @classmethod
    def for_clause(cls, qdef: QualifierDef, clause) -> "_SymbolEnv":
        env = cls(qdef)
        for d in clause.decls:
            env.decls[d.name] = d
        env.decls.setdefault(
            qdef.var, Q.VarDecl(qdef.var, qdef.dtype, qdef.classifier)
        )
        return env

    def _fresh(self, name: str) -> TVar:
        if name not in self.qvars:
            self.qvars.append(name)
        return TVar(name)

    def const_value(self, name: str) -> Term:
        decl = self.decls[name]
        if decl.classifier is not Q.Classifier.CONST:
            raise ObligationError(
                f"{name} used as a constant but declared {decl.classifier.value}"
            )
        return self._fresh(f"c_{name}")

    def expr_term(self, name: str) -> Term:
        """The reified expression bound to a pattern variable."""
        decl = self.decls[name]
        if decl.classifier is Q.Classifier.CONST:
            return S.const_expr(self._fresh(f"c_{name}"))
        if decl.classifier in (Q.Classifier.LVALUE, Q.Classifier.VAR):
            return S.lval_expr(self.lvalue_term(name))
        return self._fresh(f"e_{name}")

    def lvalue_term(self, name: str) -> Term:
        decl = self.decls[name]
        if decl.classifier is Q.Classifier.VAR:
            return S.var_lv(self._fresh(f"x_{name}"))
        if decl.classifier is Q.Classifier.LVALUE:
            return self._fresh(f"l_{name}")
        raise ObligationError(
            f"{name} used as an l-value but declared {decl.classifier.value}"
        )


def _pattern_expr_term(env: _SymbolEnv, pattern: Q.Pattern) -> Term:
    if isinstance(pattern, Q.PVar):
        return env.expr_term(pattern.name)
    if isinstance(pattern, Q.PNull):
        return S.const_expr(S.NULL)
    if isinstance(pattern, Q.PDeref):
        return S.lval_expr(S.deref_lv(env.expr_term(pattern.name)))
    if isinstance(pattern, Q.PAddrOf):
        return S.addr_expr(env.lvalue_term(pattern.name))
    if isinstance(pattern, Q.PUnop):
        return S.unop_expr(pattern.op, env.expr_term(pattern.name))
    if isinstance(pattern, Q.PBinop):
        return S.binop_expr(
            pattern.op, env.expr_term(pattern.left), env.expr_term(pattern.right)
        )
    if isinstance(pattern, Q.PNew):
        raise ObligationError("`new` is handled at the statement level")
    raise ObligationError(f"unknown pattern {pattern!r}")


# ------------------------------------------------------ predicate hypotheses


def _pred_hypotheses(
    env: _SymbolEnv, pred: Q.Pred, quals: QualifierSet
) -> Formula:
    if isinstance(pred, Q.PredTrue):
        return TRUE
    if isinstance(pred, Q.PredAnd):
        return And(
            _pred_hypotheses(env, pred.left, quals),
            _pred_hypotheses(env, pred.right, quals),
        )
    if isinstance(pred, Q.PredOr):
        return Or(
            _pred_hypotheses(env, pred.left, quals),
            _pred_hypotheses(env, pred.right, quals),
        )
    if isinstance(pred, Q.PredNot):
        return Not(_pred_hypotheses(env, pred.operand, quals))
    if isinstance(pred, Q.PredQual):
        other = quals.get(pred.qualifier)
        if other is None:
            raise ObligationError(
                f"predicate references unknown qualifier {pred.qualifier!r}"
            )
        # Proving q's rules sound requires the invariants of the
        # qualifiers q refers to (section 4.2).
        expr_term = env.expr_term(pred.var)
        if other.is_value:
            inv = value_invariant(other, RHO, expr_term)
        else:
            inv = ref_invariant(other, RHO, env.lvalue_term(pred.var))
        return inv if inv is not None else TRUE
    if isinstance(pred, Q.PredCmp):
        left = _aexpr_term(env, pred.left)
        right = _aexpr_term(env, pred.right)
        ops = {
            "==": lambda: Eq(left, right),
            "!=": lambda: Not(Eq(left, right)),
            "<": lambda: Lt(left, right),
            ">": lambda: Lt(right, left),
            "<=": lambda: Le(left, right),
            ">=": lambda: Le(right, left),
        }
        return ops[pred.op]()
    raise ObligationError(f"unknown predicate {pred!r}")


def _aexpr_term(env: _SymbolEnv, aexpr: Q.AExpr) -> Term:
    if isinstance(aexpr, Q.ANum):
        return Int(aexpr.value)
    if isinstance(aexpr, Q.ANull):
        return S.NULL
    if isinstance(aexpr, Q.AVar):
        return env.const_value(aexpr.name)
    if isinstance(aexpr, Q.ABin):
        return fn(aexpr.op, _aexpr_term(env, aexpr.left), _aexpr_term(env, aexpr.right))
    raise ObligationError(f"unknown arithmetic operand {aexpr!r}")


# ------------------------------------------------------------ value rules


def _value_obligations(qdef: QualifierDef, quals: QualifierSet) -> List[Obligation]:
    out: List[Obligation] = []
    for i, clause in enumerate(qdef.cases, start=1):
        rule = f"case {i}: {clause}"
        if qdef.invariant is None:
            out.append(Obligation(qdef.name, rule, TRUE, trivial=True))
            continue
        env = _SymbolEnv.for_clause(qdef, clause)
        subject_term = _pattern_expr_term(env, clause.pattern)
        hyp = _pred_hypotheses(env, clause.predicate, quals)
        conclusion = value_invariant(qdef, RHO, subject_term)
        goal = ForAll(
            tuple(["rho"] + env.qvars), Implies(hyp, conclusion)
        )
        out.append(Obligation(qdef.name, rule, goal))
    return out


# -------------------------------------------------------------- ref rules


def _ref_subject(qdef: QualifierDef) -> Tuple[Term, List[str]]:
    """The symbolic qualified l-value and its quantified variables."""
    if qdef.classifier is Q.Classifier.VAR:
        return S.var_lv(TVar("x_subject")), ["x_subject"]
    return TVar("l_subject"), ["l_subject"]


def _establishment_obligations(
    qdef: QualifierDef, quals: QualifierSet
) -> List[Obligation]:
    out: List[Obligation] = []
    subject, subject_vars = _ref_subject(qdef)
    inv_after = ref_invariant(qdef, S.step_state(RHO), subject)

    for i, clause in enumerate(qdef.assigns, start=1):
        rule = f"assign {i}: {clause.pattern}"
        if qdef.invariant is None:
            out.append(Obligation(qdef.name, rule, TRUE, trivial=True))
            continue
        env = _SymbolEnv.for_clause(qdef, clause)
        hyps: List[Formula] = []
        if isinstance(clause.pattern, Q.PNew):
            stmt = S.assign_new_stmt(subject)
        else:
            rhs = _pattern_expr_term(env, clause.pattern)
            stmt = S.assign_stmt(subject, rhs)
        hyps.append(Eq(S.get_stmt(RHO), stmt))
        pred_hyp = _pred_hypotheses(env, clause.predicate, quals)
        if pred_hyp is not TRUE:
            hyps.append(pred_hyp)
        goal = ForAll(
            tuple(["rho"] + subject_vars + env.qvars),
            Implies(And(*hyps), inv_after),
        )
        out.append(Obligation(qdef.name, rule, goal))

    if qdef.ondecl:
        rule = "ondecl: establishment at declaration"
        if qdef.invariant is None:
            out.append(Obligation(qdef.name, rule, TRUE, trivial=True))
        else:
            # A freshly declared variable's address is referenced from
            # nowhere in the store (declaration freshness).
            p = TVar("p")
            fresh = ForAll(
                ("p",),
                Not(Eq(S.select(S.get_store(RHO), p), S.location(RHO, subject))),
                triggers=((S.select(S.get_store(RHO), p),),),
            )
            inv_now = ref_invariant(qdef, RHO, subject)
            goal = ForAll(
                tuple(["rho"] + subject_vars), Implies(fresh, inv_now)
            )
            out.append(Obligation(qdef.name, rule, goal))
    return out


def _preservation_obligations(
    qdef: QualifierDef, quals: QualifierSet
) -> List[Obligation]:
    """One obligation per RHS form consistent with the disallow clause
    (the prover performs the case analysis the paper describes as "a
    case analysis on the different forms of right-hand sides")."""
    if qdef.invariant is None:
        return [
            Obligation(qdef.name, "preservation", TRUE, trivial=True)
        ]
    out: List[Obligation] = []
    subject, subject_vars = _ref_subject(qdef)
    disallow = qdef.disallow or Q.DisallowClause()
    a_subject = S.location(RHO, subject)
    target = TVar("l_target")
    inv_before = ref_invariant(qdef, RHO, subject)
    inv_after = ref_invariant(qdef, S.step_state(RHO), subject)

    def emit(form: str, stmt: Term, extra_hyps: List[Formula], extra_vars: List[str]):
        hyps = [
            inv_before,
            Eq(S.get_stmt(RHO), stmt),
            Not(Eq(S.location(RHO, target), a_subject)),
        ] + extra_hyps
        goal = ForAll(
            tuple(["rho"] + subject_vars + ["l_target"] + extra_vars),
            Implies(And(*hyps), inv_after),
        )
        out.append(Obligation(qdef.name, f"preservation: rhs is {form}", goal))

    # Form 1: constant.  Typing: a pointer-typed constant is NULL; other
    # constants are integer-typed, hence neither heap locations nor
    # addresses.
    c = TVar("c_rhs")
    emit(
        "a constant",
        S.assign_stmt(target, S.const_expr(c)),
        [
            Or(
                Eq(c, S.NULL),
                And(Not(S.is_heap_loc(c)), Not(Eq(c, a_subject))),
            )
        ],
        ["c_rhs"],
    )

    # Form 2: a read of an l-value.  With `disallow L`, the read l-value
    # cannot be (an alias of) the qualified one: any l-value at the same
    # address has the qualified type (no subtyping under pointers), so
    # reading it is equally forbidden.  Without the disallow, the read
    # may target the qualified l-value itself.
    read_lv = TVar("l_read")
    read_hyps: List[Formula] = []
    if disallow.forbid_reference:
        read_hyps.append(Not(Eq(S.location(RHO, read_lv), a_subject)))
    emit(
        "a read of an l-value",
        S.assign_stmt(target, S.lval_expr(read_lv)),
        read_hyps,
        ["l_read"],
    )

    # Form 3: the address of a variable.  With `disallow &X`, the
    # variable cannot be the qualified one.
    xv = TVar("x_addr")
    addr_hyps: List[Formula] = []
    if disallow.forbid_address_of and qdef.classifier is Q.Classifier.VAR:
        addr_hyps.append(Not(Eq(xv, TVar("x_subject"))))
    emit(
        "the address of a variable",
        S.assign_stmt(target, S.addr_expr(S.var_lv(xv))),
        addr_hyps,
        ["x_addr"],
    )

    # Form 4: an allocation.
    emit("an allocation (new)", S.assign_new_stmt(target), [], [])

    # Forms 5, 6: unary / binary operations.  Typing: arithmetic results
    # are integer-typed — not heap locations and not addresses.
    e1, e2 = TVar("e_rhs1"), TVar("e_rhs2")
    for form, rhs, extra_vars in (
        ("a unary operation", S.unop_expr("-", e1), ["e_rhs1"]),
        ("a binary operation", S.binop_expr("+", e1, e2), ["e_rhs1", "e_rhs2"]),
    ):
        w = S.eval_expr(RHO, rhs)
        emit(
            form,
            S.assign_stmt(target, rhs),
            [Not(S.is_heap_loc(w)), Not(Eq(w, a_subject))],
            extra_vars,
        )

    return out


# -------------------------------------------------------------------- driver


def generate_obligations(
    qdef: QualifierDef, quals: QualifierSet
) -> List[Obligation]:
    """All proof obligations for one qualifier definition."""
    if qdef.is_value:
        return _value_obligations(qdef, quals)
    return _establishment_obligations(qdef, quals) + _preservation_obligations(
        qdef, quals
    )
