"""The qualifier-definition language (paper section 2).

Qualifier definitions are written in the concrete syntax of the paper's
figures and parsed by :func:`parse_qualifier`.  A definition declares a
``value`` or ``ref`` qualifier, its type rules (``case`` / ``restrict``
for value qualifiers; ``assign`` / ``disallow`` / ``ondecl`` for
reference qualifiers) and optionally the run-time ``invariant`` the
rules are meant to establish.
"""

from repro.core.qualifiers.ast import (
    AssignClause,
    CaseClause,
    Classifier,
    DisallowClause,
    QualifierDef,
    QualifierSet,
    RestrictClause,
)
from repro.core.qualifiers.parser import QualParseError, parse_qualifier, parse_qualifiers
from repro.core.qualifiers.validate import validate_definition, validate_set
from repro.core.qualifiers.library import (
    NEG,
    NONNULL,
    NONZERO,
    POS,
    TAINTED,
    UNALIASED,
    UNIQUE,
    UNTAINTED,
    UNTAINTED_WITH_CONSTS,
    standard_qualifiers,
)

__all__ = [
    "AssignClause",
    "CaseClause",
    "Classifier",
    "DisallowClause",
    "QualifierDef",
    "QualifierSet",
    "RestrictClause",
    "QualParseError",
    "parse_qualifier",
    "parse_qualifiers",
    "validate_definition",
    "validate_set",
    "POS",
    "NEG",
    "NONZERO",
    "NONNULL",
    "TAINTED",
    "UNTAINTED",
    "UNTAINTED_WITH_CONSTS",
    "UNIQUE",
    "UNALIASED",
    "standard_qualifiers",
]
