"""Abstract syntax of the qualifier-definition language.

Grammar (paper section 2; patterns from section 2.1.1):

    P ::= X | *X | &X | new | uop X | X bop X

where ``X`` ranges over variable patterns with a declared type and
classifier (``Expr``, ``Const``, ``LValue``, ``Var``).  ``NULL`` is also
accepted as a pattern in ``assign`` blocks (figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple


class Classifier(str, Enum):
    """What kind of program fragment a pattern variable may match."""

    EXPR = "Expr"
    CONST = "Const"
    LVALUE = "LValue"
    VAR = "Var"


# ------------------------------------------------------------- DSL types
# Types inside qualifier definitions may mention a type variable (``T``),
# so they are a separate small grammar that *matches against* C types.


@dataclass(frozen=True)
class DType:
    pass


@dataclass(frozen=True)
class DInt(DType):
    kind: str = "int"

    def __str__(self) -> str:
        return self.kind


@dataclass(frozen=True)
class DVoid(DType):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class DTypeVar(DType):
    name: str = "T"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class DPtr(DType):
    inner: DType = field(default_factory=DTypeVar)

    def __str__(self) -> str:
        return f"{self.inner}*"


# ------------------------------------------------------------- variables


@dataclass(frozen=True)
class VarDecl:
    """``decl int Expr E1`` — a pattern variable declaration."""

    name: str
    dtype: DType
    classifier: Classifier

    def __str__(self) -> str:
        return f"{self.dtype} {self.classifier.value} {self.name}"


# -------------------------------------------------------------- patterns


@dataclass(frozen=True)
class Pattern:
    pass


@dataclass(frozen=True)
class PVar(Pattern):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PDeref(Pattern):
    name: str

    def __str__(self) -> str:
        return f"*{self.name}"


@dataclass(frozen=True)
class PAddrOf(Pattern):
    name: str

    def __str__(self) -> str:
        return f"&{self.name}"


@dataclass(frozen=True)
class PNew(Pattern):
    def __str__(self) -> str:
        return "new"


@dataclass(frozen=True)
class PNull(Pattern):
    def __str__(self) -> str:
        return "NULL"


@dataclass(frozen=True)
class PUnop(Pattern):
    op: str
    name: str

    def __str__(self) -> str:
        return f"{self.op}{self.name}"


@dataclass(frozen=True)
class PBinop(Pattern):
    op: str
    left: str
    right: str

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


def pattern_vars(p: Pattern) -> Tuple[str, ...]:
    if isinstance(p, (PVar, PDeref, PAddrOf)):
        return (p.name,)
    if isinstance(p, PUnop):
        return (p.name,)
    if isinstance(p, PBinop):
        return (p.left, p.right)
    return ()


# ------------------------------------------------------------ predicates
# The predicate after `where`: qualifier checks, operations on constants,
# conjunction and disjunction (section 2.1.1).


@dataclass(frozen=True)
class Pred:
    pass


@dataclass(frozen=True)
class PredTrue(Pred):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class PredQual(Pred):
    """``pos(E1)`` — a (possibly recursive) qualifier check."""

    qualifier: str
    var: str

    def __str__(self) -> str:
        return f"{self.qualifier}({self.var})"


@dataclass(frozen=True)
class AVar:
    """A pattern variable used as an arithmetic operand (must have
    classifier Const when the predicate is evaluated)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ANum:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class ANull:
    def __str__(self) -> str:
        return "NULL"


@dataclass(frozen=True)
class ABin:
    op: str
    left: "AExpr"
    right: "AExpr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


AExpr = AVar | ANum | ANull | ABin


@dataclass(frozen=True)
class PredCmp(Pred):
    """``C > 0`` — comparison over constant operands."""

    op: str  # '>', '<', '>=', '<=', '==', '!='
    left: AExpr
    right: AExpr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class PredAnd(Pred):
    left: Pred
    right: Pred

    def __str__(self) -> str:
        return f"({self.left} && {self.right})"


@dataclass(frozen=True)
class PredOr(Pred):
    left: Pred
    right: Pred

    def __str__(self) -> str:
        return f"({self.left} || {self.right})"


@dataclass(frozen=True)
class PredNot(Pred):
    operand: Pred

    def __str__(self) -> str:
        return f"!({self.operand})"


# ------------------------------------------------------------- invariants
# Terms and formulas of the invariant language (sections 2.1.3, 2.2.3).


@dataclass(frozen=True)
class ITerm:
    pass


@dataclass(frozen=True)
class IValue(ITerm):
    """``value(E)`` — the value of the qualified expression in ρ."""

    var: str

    def __str__(self) -> str:
        return f"value({self.var})"


@dataclass(frozen=True)
class ILocation(ITerm):
    """``location(L)`` — the address of the qualified l-value in ρ."""

    var: str

    def __str__(self) -> str:
        return f"location({self.var})"


@dataclass(frozen=True)
class IDeref(ITerm):
    """``*P`` — the contents of location ``P`` in ρ."""

    operand: ITerm

    def __str__(self) -> str:
        return f"*{self.operand}"


@dataclass(frozen=True)
class IVar(ITerm):
    """A quantified variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class INum(ITerm):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class INull(ITerm):
    def __str__(self) -> str:
        return "NULL"


@dataclass(frozen=True)
class IBin(ITerm):
    """Arithmetic in invariants, e.g. ``value(E) % 2``."""

    op: str  # '+', '-', '*', '/', '%'
    left: ITerm
    right: ITerm

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class IFormula:
    pass


@dataclass(frozen=True)
class ICmp(IFormula):
    op: str  # '==', '!=', '>', '<', '>=', '<='
    left: ITerm
    right: ITerm

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class IIsHeapLoc(IFormula):
    operand: ITerm

    def __str__(self) -> str:
        return f"isHeapLoc({self.operand})"


@dataclass(frozen=True)
class IAnd(IFormula):
    left: IFormula
    right: IFormula

    def __str__(self) -> str:
        return f"({self.left} && {self.right})"


@dataclass(frozen=True)
class IOr(IFormula):
    left: IFormula
    right: IFormula

    def __str__(self) -> str:
        return f"({self.left} || {self.right})"


@dataclass(frozen=True)
class INot(IFormula):
    operand: IFormula

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class IImplies(IFormula):
    left: IFormula
    right: IFormula

    def __str__(self) -> str:
        return f"({self.left} => {self.right})"


@dataclass(frozen=True)
class IForall(IFormula):
    """``forall T** P: body`` — quantification over memory locations of
    a given type (used by reference-qualifier invariants)."""

    var: str
    dtype: DType
    body: IFormula

    def __str__(self) -> str:
        return f"forall {self.dtype} {self.var}: {self.body}"


# --------------------------------------------------------------- clauses


@dataclass(frozen=True)
class CaseClause:
    """Introduction rule: an expression matching ``pattern`` whose
    ``predicate`` holds may be given the qualified type."""

    decls: Tuple[VarDecl, ...]
    pattern: Pattern
    predicate: Pred = field(default_factory=PredTrue)

    def decl_of(self, name: str) -> VarDecl:
        for d in self.decls:
            if d.name == name:
                return d
        raise KeyError(f"pattern variable {name!r} not declared")

    def __str__(self) -> str:
        decls = f"decl {', '.join(str(d) for d in self.decls)}: " if self.decls else ""
        where = f", where {self.predicate}" if not isinstance(self.predicate, PredTrue) else ""
        return f"{decls}{self.pattern}{where}"


@dataclass(frozen=True)
class RestrictClause:
    """Any program expression matching ``pattern`` must satisfy
    ``predicate`` (section 2.1.1)."""

    decls: Tuple[VarDecl, ...]
    pattern: Pattern
    predicate: Pred = field(default_factory=PredTrue)

    def decl_of(self, name: str) -> VarDecl:
        for d in self.decls:
            if d.name == name:
                return d
        raise KeyError(f"pattern variable {name!r} not declared")


@dataclass(frozen=True)
class AssignClause:
    """Allowed right-hand sides in assignments to a ref-qualified
    l-value (section 2.2.1)."""

    decls: Tuple[VarDecl, ...]
    pattern: Pattern
    predicate: Pred = field(default_factory=PredTrue)

    def decl_of(self, name: str) -> VarDecl:
        for d in self.decls:
            if d.name == name:
                return d
        raise KeyError(f"pattern variable {name!r} not declared")


@dataclass(frozen=True)
class DisallowClause:
    """What uses of a ref-qualified l-value are forbidden: appearing as
    a reference (``disallow L``) and/or having its address taken
    (``disallow &L``)."""

    forbid_reference: bool = False
    forbid_address_of: bool = False

    def __str__(self) -> str:
        parts = []
        if self.forbid_reference:
            parts.append("L")
        if self.forbid_address_of:
            parts.append("&L")
        return "disallow " + " | ".join(parts)


# -------------------------------------------------------------- definition


@dataclass
class QualifierDef:
    """A complete qualifier definition."""

    name: str
    kind: str  # 'value' or 'ref'
    dtype: DType
    classifier: Classifier
    var: str
    cases: List[CaseClause] = field(default_factory=list)
    restricts: List[RestrictClause] = field(default_factory=list)
    assigns: List[AssignClause] = field(default_factory=list)
    disallow: Optional[DisallowClause] = None
    ondecl: bool = False
    invariant: Optional[IFormula] = None
    source: str = ""

    @property
    def is_value(self) -> bool:
        return self.kind == "value"

    @property
    def is_ref(self) -> bool:
        return self.kind == "ref"

    def referenced_qualifiers(self) -> set:
        """Names of other qualifiers mentioned in this one's predicates
        (qualifier definitions may be mutually recursive)."""
        names = set()
        for clause in list(self.cases) + list(self.restricts) + list(self.assigns):
            names |= _pred_quals(clause.predicate)
        names.discard(self.name)
        return names


def _pred_quals(pred: Pred) -> set:
    if isinstance(pred, PredQual):
        return {pred.qualifier}
    if isinstance(pred, (PredAnd, PredOr)):
        return _pred_quals(pred.left) | _pred_quals(pred.right)
    if isinstance(pred, PredNot):
        return _pred_quals(pred.operand)
    return set()


class QualifierSet:
    """A collection of qualifier definitions, indexed by name.

    The extensible typechecker and soundness checker both operate
    relative to a qualifier set, since definitions may refer to each
    other (e.g. ``pos``'s rules mention ``neg`` and vice versa).
    """

    def __init__(self, defs: List[QualifierDef] = ()):  # noqa: B006
        self._defs: Dict[str, QualifierDef] = {}
        for d in defs:
            self.add(d)

    def add(self, d: QualifierDef) -> None:
        if d.name in self._defs:
            raise ValueError(f"duplicate qualifier definition {d.name!r}")
        self._defs[d.name] = d

    def __contains__(self, name: str) -> bool:
        return name in self._defs

    def __getitem__(self, name: str) -> QualifierDef:
        return self._defs[name]

    def __iter__(self):
        return iter(self._defs.values())

    def __len__(self) -> int:
        return len(self._defs)

    def get(self, name: str) -> Optional[QualifierDef]:
        return self._defs.get(name)

    @property
    def names(self) -> set:
        return set(self._defs)

    def value_qualifiers(self) -> List[QualifierDef]:
        return [d for d in self if d.is_value]

    def ref_qualifiers(self) -> List[QualifierDef]:
        return [d for d in self if d.is_ref]

    def missing_references(self) -> set:
        """Qualifiers referenced in rules but not defined in this set."""
        missing = set()
        for d in self:
            missing |= d.referenced_qualifiers() - self.names
        return missing
