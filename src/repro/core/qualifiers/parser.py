"""Parser for the qualifier-definition language.

The concrete syntax is exactly that of the paper's figures 1, 3, 4, 5,
7 and 12; those figures parse verbatim (see the library module, which
stores them as source text).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cfront.lexer import Token, tokenize
from repro.core.qualifiers import ast as Q

_BLOCK_KEYWORDS = {"case", "restrict", "assign", "disallow", "ondecl", "invariant"}
_CMP_OPS = {">", "<", ">=", "<=", "==", "!="}
_PATTERN_BINOPS = {"+", "-", "*", "/", "%", "<<", ">>", "&", "^",
                   "==", "!=", "<", ">", "<=", ">=", "&&"}
_PATTERN_UNOPS = {"-", "!", "~"}
_BASE_TYPES = {"int", "char", "long", "short", "unsigned", "void"}


class QualParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(
            f"{message} at line {token.line}, column {token.col} (near {token.text!r})"
        )
        self.token = token


class _QualParser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------- helpers

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at(self, text: str, offset: int = 0) -> bool:
        return self._peek(offset).text == text

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def _expect(self, text: str) -> Token:
        tok = self._peek()
        if tok.text != text:
            raise QualParseError(f"expected {text!r}", tok)
        return self._advance()

    def _expect_id(self) -> Token:
        tok = self._peek()
        if tok.kind != "id":
            raise QualParseError("expected identifier", tok)
        return self._advance()

    def _at_def_start(self) -> bool:
        return self._peek().text in ("value", "ref") and self._at("qualifier", 1)

    # --------------------------------------------------------------- types

    def _parse_dtype(self) -> Q.DType:
        tok = self._expect_id()
        if tok.text in _BASE_TYPES:
            if tok.text == "void":
                base: Q.DType = Q.DVoid()
            else:
                base = Q.DInt(kind=tok.text)
        else:
            base = Q.DTypeVar(name=tok.text)
        while self._at("*"):
            self._advance()
            base = Q.DPtr(inner=base)
        return base

    # ------------------------------------------------------------ toplevel

    def parse_all(self) -> List[Q.QualifierDef]:
        defs = []
        while self._peek().kind != "eof":
            defs.append(self.parse_definition())
        return defs

    def parse_definition(self) -> Q.QualifierDef:
        start = self.pos
        kind_tok = self._advance()
        if kind_tok.text not in ("value", "ref"):
            raise QualParseError("expected 'value' or 'ref'", kind_tok)
        self._expect("qualifier")
        name = self._expect_id().text
        self._expect("(")
        dtype = self._parse_dtype()
        classifier_tok = self._expect_id()
        try:
            classifier = Q.Classifier(classifier_tok.text)
        except ValueError:
            raise QualParseError(
                "expected classifier (Expr, Const, LValue, Var)", classifier_tok
            ) from None
        var = self._expect_id().text
        self._expect(")")

        qdef = Q.QualifierDef(
            name=name,
            kind=kind_tok.text,
            dtype=dtype,
            classifier=classifier,
            var=var,
        )
        while not self._at_def_start() and self._peek().kind != "eof":
            self._parse_block(qdef)
        end = self.pos
        qdef.source = " ".join(t.text for t in self.tokens[start:end])
        self._validate(qdef, kind_tok)
        return qdef

    def _validate(self, qdef: Q.QualifierDef, tok: Token) -> None:
        if qdef.is_value and (qdef.assigns or qdef.disallow or qdef.ondecl):
            raise QualParseError(
                f"value qualifier {qdef.name!r} may not use assign/disallow/ondecl",
                tok,
            )
        if qdef.is_ref and (qdef.cases or qdef.restricts):
            raise QualParseError(
                f"ref qualifier {qdef.name!r} may not use case/restrict blocks",
                tok,
            )
        if qdef.is_ref and qdef.classifier not in (
            Q.Classifier.LVALUE,
            Q.Classifier.VAR,
        ):
            raise QualParseError(
                f"ref qualifier {qdef.name!r} must apply to LValue or Var",
                tok,
            )

    # ---------------------------------------------------------------- blocks

    def _parse_block(self, qdef: Q.QualifierDef) -> None:
        tok = self._peek()
        if tok.text == "case":
            self._advance()
            subject = self._expect_id().text
            if subject != qdef.var:
                raise QualParseError(
                    f"case subject {subject!r} must be the qualifier variable {qdef.var!r}",
                    tok,
                )
            self._expect("of")
            qdef.cases.extend(
                Q.CaseClause(*c) for c in self._parse_clause_list(qdef)
            )
        elif tok.text == "restrict":
            self._advance()
            qdef.restricts.extend(
                Q.RestrictClause(*c) for c in self._parse_clause_list(qdef)
            )
        elif tok.text == "assign":
            self._advance()
            subject = self._expect_id().text
            if subject != qdef.var:
                raise QualParseError(
                    f"assign subject {subject!r} must be the qualifier variable {qdef.var!r}",
                    tok,
                )
            qdef.assigns.extend(
                Q.AssignClause(*c) for c in self._parse_clause_list(qdef)
            )
        elif tok.text == "disallow":
            self._advance()
            qdef.disallow = self._parse_disallow(qdef)
        elif tok.text == "ondecl":
            self._advance()
            qdef.ondecl = True
        elif tok.text == "invariant":
            self._advance()
            qdef.invariant = self._parse_iformula()
        else:
            raise QualParseError("expected a qualifier block", tok)

    def _parse_disallow(self, qdef: Q.QualifierDef) -> Q.DisallowClause:
        forbid_ref = False
        forbid_addr = False
        while True:
            if self._at("&"):
                self._advance()
                name = self._expect_id().text
                if name != qdef.var:
                    raise QualParseError(
                        f"disallow must mention the qualifier variable {qdef.var!r}",
                        self._peek(),
                    )
                forbid_addr = True
            else:
                name = self._expect_id().text
                if name != qdef.var:
                    raise QualParseError(
                        f"disallow must mention the qualifier variable {qdef.var!r}",
                        self._peek(),
                    )
                forbid_ref = True
            if self._at("|"):
                self._advance()
                continue
            break
        return Q.DisallowClause(
            forbid_reference=forbid_ref, forbid_address_of=forbid_addr
        )

    # --------------------------------------------------------------- clauses

    def _parse_clause_list(
        self, qdef: Q.QualifierDef
    ) -> List[Tuple[Tuple[Q.VarDecl, ...], Q.Pattern, Q.Pred]]:
        clauses = [self._parse_clause(qdef)]
        while self._at("|"):
            self._advance()
            clauses.append(self._parse_clause(qdef))
        return clauses

    def _parse_clause(
        self, qdef: Q.QualifierDef
    ) -> Tuple[Tuple[Q.VarDecl, ...], Q.Pattern, Q.Pred]:
        decls: List[Q.VarDecl] = []
        if self._at("decl"):
            self._advance()
            decls.extend(self._parse_decl_group())
            while self._at(","):
                # Either another name sharing the previous dtype, or a new
                # dtype group.  Disambiguate by what follows the name.
                self._advance()
                if self._looks_like_decl_group():
                    decls.extend(self._parse_decl_group())
                else:
                    name = self._expect_id().text
                    decls.append(
                        Q.VarDecl(name, decls[-1].dtype, decls[-1].classifier)
                    )
            self._expect(":")
        pattern = self._parse_pattern(qdef, decls)
        predicate: Q.Pred = Q.PredTrue()
        if self._at(","):
            self._advance()
            self._expect("where")
            predicate = self._parse_pred()
        return tuple(decls), pattern, predicate

    def _looks_like_decl_group(self) -> bool:
        """After a comma in a decl list: is this ``<type> <Classifier> <name>``?"""
        offset = 0
        if self._peek(offset).kind != "id":
            return False
        offset += 1
        while self._at("*", offset):
            offset += 1
        tok = self._peek(offset)
        return tok.kind == "id" and tok.text in (c.value for c in Q.Classifier)

    def _parse_decl_group(self) -> List[Q.VarDecl]:
        dtype = self._parse_dtype()
        classifier_tok = self._expect_id()
        try:
            classifier = Q.Classifier(classifier_tok.text)
        except ValueError:
            raise QualParseError("expected classifier", classifier_tok) from None
        names = [self._expect_id().text]
        # Further names after commas are handled by the caller (it must
        # disambiguate new decl groups), so parse only one name here; the
        # common form `decl int Expr E1, E2` is completed by the caller.
        return [Q.VarDecl(n, dtype, classifier) for n in names]

    # -------------------------------------------------------------- patterns

    def _parse_pattern(
        self, qdef: Q.QualifierDef, decls: List[Q.VarDecl]
    ) -> Q.Pattern:
        tok = self._peek()
        if tok.text == "new":
            self._advance()
            return Q.PNew()
        if tok.text == "NULL":
            self._advance()
            return Q.PNull()
        if tok.text == "*":
            self._advance()
            return Q.PDeref(self._expect_id().text)
        if tok.text == "&":
            self._advance()
            return Q.PAddrOf(self._expect_id().text)
        if tok.kind == "punct" and tok.text in _PATTERN_UNOPS:
            self._advance()
            return Q.PUnop(tok.text, self._expect_id().text)
        name = self._expect_id().text
        nxt = self._peek()
        if nxt.kind == "punct" and nxt.text in _PATTERN_BINOPS:
            # Binary pattern — but a ',' (where) or block keyword also ends
            # a bare-variable pattern, and those are not in the binop set.
            self._advance()
            right = self._expect_id().text
            return Q.PBinop(nxt.text, name, right)
        return Q.PVar(name)

    # ------------------------------------------------------------ predicates

    def _parse_pred(self) -> Q.Pred:
        return self._parse_pred_or()

    def _parse_pred_or(self) -> Q.Pred:
        left = self._parse_pred_and()
        while self._at("||"):
            self._advance()
            left = Q.PredOr(left, self._parse_pred_and())
        return left

    def _parse_pred_and(self) -> Q.Pred:
        left = self._parse_pred_atom()
        while self._at("&&"):
            self._advance()
            left = Q.PredAnd(left, self._parse_pred_atom())
        return left

    def _parse_pred_atom(self) -> Q.Pred:
        tok = self._peek()
        if tok.text == "!":
            self._advance()
            return Q.PredNot(self._parse_pred_atom())
        if tok.text == "(":
            # Could be a parenthesized predicate or an arithmetic group;
            # try predicate first and fall back to comparison.
            save = self.pos
            try:
                self._advance()
                inner = self._parse_pred()
                self._expect(")")
                return inner
            except QualParseError:
                self.pos = save
                return self._parse_cmp()
        if tok.kind == "id" and self._at("(", 1):
            qual = self._advance().text
            self._expect("(")
            var = self._expect_id().text
            self._expect(")")
            return Q.PredQual(qual, var)
        return self._parse_cmp()

    def _parse_cmp(self) -> Q.Pred:
        left = self._parse_aexpr()
        tok = self._peek()
        if tok.text not in _CMP_OPS:
            raise QualParseError("expected comparison operator", tok)
        self._advance()
        right = self._parse_aexpr()
        return Q.PredCmp(tok.text, left, right)

    def _parse_aexpr(self) -> Q.AExpr:
        left = self._parse_aterm()
        while self._peek().text in ("+", "-"):
            op = self._advance().text
            left = Q.ABin(op, left, self._parse_aterm())
        return left

    def _parse_aterm(self) -> Q.AExpr:
        left = self._parse_afactor()
        while self._peek().text in ("*", "/", "%"):
            op = self._advance().text
            left = Q.ABin(op, left, self._parse_afactor())
        return left

    def _parse_afactor(self) -> Q.AExpr:
        tok = self._peek()
        if tok.kind == "int":
            self._advance()
            return Q.ANum(tok.int_value)
        if tok.text == "NULL":
            self._advance()
            return Q.ANull()
        if tok.text == "-":
            self._advance()
            inner = self._parse_afactor()
            return Q.ABin("-", Q.ANum(0), inner)
        if tok.text == "(":
            self._advance()
            inner = self._parse_aexpr()
            self._expect(")")
            return inner
        if tok.kind == "id":
            self._advance()
            return Q.AVar(tok.text)
        raise QualParseError("expected arithmetic operand", tok)

    # ------------------------------------------------------------ invariants

    def _parse_iformula(self) -> Q.IFormula:
        return self._parse_implies()

    def _parse_implies(self) -> Q.IFormula:
        left = self._parse_ior()
        if self._at("=") and self._at(">", 1) and self._adjacent(0, 1):
            self._advance()
            self._advance()
            return Q.IImplies(left, self._parse_implies())
        return left

    def _adjacent(self, i: int, j: int) -> bool:
        a, b = self._peek(i), self._peek(j)
        return a.line == b.line and a.col + len(a.text) == b.col

    def _parse_ior(self) -> Q.IFormula:
        left = self._parse_iand()
        while self._at("||"):
            self._advance()
            left = Q.IOr(left, self._parse_iand())
        return left

    def _parse_iand(self) -> Q.IFormula:
        left = self._parse_iatom()
        while self._at("&&"):
            self._advance()
            left = Q.IAnd(left, self._parse_iatom())
        return left

    def _parse_iatom(self) -> Q.IFormula:
        tok = self._peek()
        if tok.text == "!":
            self._advance()
            return Q.INot(self._parse_iatom())
        if tok.text == "forall":
            self._advance()
            dtype = self._parse_dtype()
            var = self._expect_id().text
            self._expect(":")
            body = self._parse_implies()
            return Q.IForall(var, dtype, body)
        if tok.text == "isHeapLoc":
            self._advance()
            self._expect("(")
            term = self._parse_iterm()
            self._expect(")")
            return Q.IIsHeapLoc(term)
        if tok.text == "(":
            self._advance()
            inner = self._parse_iformula()
            self._expect(")")
            return inner
        return self._parse_icmp()

    def _parse_icmp(self) -> Q.IFormula:
        left = self._parse_iarith()
        tok = self._peek()
        op = tok.text
        if op == "=" and not (self._at(">", 1) and self._adjacent(0, 1)):
            op = "=="
            self._advance()
        elif op in _CMP_OPS:
            self._advance()
        else:
            raise QualParseError("expected comparison in invariant", tok)
        right = self._parse_iarith()
        return Q.ICmp(op, left, right)

    def _parse_iarith(self) -> Q.ITerm:
        left = self._parse_iarith_term()
        while self._peek().text in ("+", "-"):
            op = self._advance().text
            left = Q.IBin(op, left, self._parse_iarith_term())
        return left

    def _parse_iarith_term(self) -> Q.ITerm:
        left = self._parse_iterm()
        while self._peek().text in ("*", "/", "%"):
            # `*` only binds as multiplication when something follows on
            # the same construct; dereference `*P` is prefix and handled
            # in _parse_iterm, so an infix `*` here is unambiguous.
            op = self._advance().text
            left = Q.IBin(op, left, self._parse_iterm())
        return left

    def _parse_iterm(self) -> Q.ITerm:
        tok = self._peek()
        if tok.text == "value" and self._at("(", 1):
            self._advance()
            self._expect("(")
            var = self._expect_id().text
            self._expect(")")
            return Q.IValue(var)
        if tok.text == "location" and self._at("(", 1):
            self._advance()
            self._expect("(")
            var = self._expect_id().text
            self._expect(")")
            return Q.ILocation(var)
        if tok.text == "*":
            self._advance()
            return Q.IDeref(self._parse_iterm())
        if tok.text == "NULL":
            self._advance()
            return Q.INull()
        if tok.kind == "int":
            self._advance()
            return Q.INum(tok.int_value)
        if tok.text == "-" and self._peek(1).kind == "int":
            self._advance()
            num = self._advance()
            return Q.INum(-num.int_value)
        if tok.kind == "id":
            self._advance()
            return Q.IVar(tok.text)
        raise QualParseError("expected invariant term", tok)


def parse_qualifier(source: str) -> Q.QualifierDef:
    """Parse exactly one qualifier definition."""
    parser = _QualParser(source)
    qdef = parser.parse_definition()
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise QualParseError("unexpected trailing input", trailing)
    return qdef


def parse_qualifiers(source: str) -> List[Q.QualifierDef]:
    """Parse a sequence of qualifier definitions."""
    return _QualParser(source).parse_all()
