"""Static validation of qualifier definitions.

The parser enforces syntactic well-formedness; this pass catches the
semantic slips that would otherwise surface as confusing failures
during typechecking or obligation generation:

* patterns using undeclared variables;
* declared pattern variables that the pattern never binds;
* ``where`` predicates doing arithmetic on non-``Const`` variables;
* qualifier checks referencing undefined qualifiers;
* invariants naming a variable other than the subject, or using
  ``location`` on a value qualifier;
* ``value``/``ref`` blocks and classifier combinations the parser
  cannot rule out locally (e.g. a ref qualifier with no rules at all).

``validate_definition`` returns a list of human-readable problems
(empty = clean); ``validate_set`` covers a whole library including
cross-references.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.core.qualifiers import ast as Q
from repro.core.qualifiers.ast import QualifierDef, QualifierSet


def validate_definition(
    qdef: QualifierDef, quals: Optional[QualifierSet] = None
) -> List[str]:
    problems: List[str] = []
    known = quals.names if quals is not None else {qdef.name}
    known = set(known) | {qdef.name}

    clauses = (
        [("case", c) for c in qdef.cases]
        + [("restrict", r) for r in qdef.restricts]
        + [("assign", a) for a in qdef.assigns]
    )
    for kind, clause in clauses:
        problems.extend(_validate_clause(qdef, kind, clause, known))

    if qdef.invariant is not None:
        problems.extend(_validate_invariant(qdef))

    if qdef.is_ref and not (qdef.assigns or qdef.ondecl):
        problems.append(
            f"ref qualifier {qdef.name!r} has neither assign rules nor "
            f"ondecl: no l-value can ever be given it"
        )
    if qdef.is_value and not qdef.cases and qdef.invariant is not None:
        # Only casts can introduce it; legal (flow-qualifier style with
        # a checked invariant) but worth a note.
        problems.append(
            f"value qualifier {qdef.name!r} has an invariant but no case "
            f"rules: only casts (with run-time checks) can introduce it"
        )
    return problems


def _clause_env(qdef: QualifierDef, clause) -> dict:
    env = {d.name: d for d in clause.decls}
    env.setdefault(qdef.var, Q.VarDecl(qdef.var, qdef.dtype, qdef.classifier))
    return env


def _validate_clause(qdef: QualifierDef, kind: str, clause, known: Set[str]) -> List[str]:
    problems: List[str] = []
    env = _clause_env(qdef, clause)
    where = f"{kind} clause `{clause.pattern}`"

    bound = set(Q.pattern_vars(clause.pattern))
    for name in bound:
        if name not in env:
            problems.append(f"{where}: pattern variable {name!r} is not declared")
    for decl in clause.decls:
        if decl.name not in bound:
            problems.append(
                f"{where}: declared variable {decl.name!r} is never bound "
                f"by the pattern"
            )

    problems.extend(_validate_pred(qdef, clause.predicate, env, bound, known, where))
    return problems


def _validate_pred(qdef, pred, env, bound, known, where) -> List[str]:
    problems: List[str] = []
    if isinstance(pred, (Q.PredAnd, Q.PredOr)):
        problems += _validate_pred(qdef, pred.left, env, bound, known, where)
        problems += _validate_pred(qdef, pred.right, env, bound, known, where)
    elif isinstance(pred, Q.PredNot):
        problems += _validate_pred(qdef, pred.operand, env, bound, known, where)
    elif isinstance(pred, Q.PredQual):
        if pred.qualifier not in known:
            problems.append(
                f"{where}: predicate references undefined qualifier "
                f"{pred.qualifier!r}"
            )
        if pred.var not in bound:
            problems.append(
                f"{where}: qualifier check on {pred.var!r}, which the "
                f"pattern does not bind"
            )
    elif isinstance(pred, Q.PredCmp):
        for side in (pred.left, pred.right):
            problems += _validate_aexpr(side, env, bound, where)
    return problems


def _validate_aexpr(aexpr, env, bound, where) -> List[str]:
    problems: List[str] = []
    if isinstance(aexpr, Q.AVar):
        decl = env.get(aexpr.name)
        if decl is None or aexpr.name not in bound:
            problems.append(
                f"{where}: comparison uses {aexpr.name!r}, which the "
                f"pattern does not bind"
            )
        elif decl.classifier is not Q.Classifier.CONST:
            problems.append(
                f"{where}: comparison on {aexpr.name!r} requires the Const "
                f"classifier (it is {decl.classifier.value})"
            )
    elif isinstance(aexpr, Q.ABin):
        problems += _validate_aexpr(aexpr.left, env, bound, where)
        problems += _validate_aexpr(aexpr.right, env, bound, where)
    return problems


def _validate_invariant(qdef: QualifierDef) -> List[str]:
    problems: List[str] = []
    quantified: Set[str] = set()

    def term(t: Q.ITerm) -> None:
        if isinstance(t, Q.IValue):
            if t.var != qdef.var:
                problems.append(
                    f"invariant: value({t.var}) does not name the subject "
                    f"{qdef.var!r}"
                )
        elif isinstance(t, Q.ILocation):
            if qdef.is_value:
                problems.append(
                    "invariant: location() is only meaningful for "
                    "reference qualifiers"
                )
            elif t.var != qdef.var:
                problems.append(
                    f"invariant: location({t.var}) does not name the "
                    f"subject {qdef.var!r}"
                )
        elif isinstance(t, Q.IVar):
            if t.name not in quantified and t.name != qdef.var:
                problems.append(
                    f"invariant: unbound variable {t.name!r}"
                )
        elif isinstance(t, Q.IDeref):
            term(t.operand)
        elif isinstance(t, Q.IBin):
            term(t.left)
            term(t.right)

    def formula(g: Q.IFormula) -> None:
        if isinstance(g, Q.ICmp):
            term(g.left)
            term(g.right)
        elif isinstance(g, Q.IIsHeapLoc):
            term(g.operand)
        elif isinstance(g, (Q.IAnd, Q.IOr, Q.IImplies)):
            formula(g.left)
            formula(g.right)
        elif isinstance(g, Q.INot):
            formula(g.operand)
        elif isinstance(g, Q.IForall):
            quantified.add(g.var)
            formula(g.body)
            quantified.discard(g.var)

    formula(qdef.invariant)
    return problems


def validate_set(quals: QualifierSet) -> List[str]:
    """Validate every definition in a set, including cross-references."""
    problems: List[str] = []
    for qdef in quals:
        for problem in validate_definition(qdef, quals):
            problems.append(f"{qdef.name}: {problem}")
    return problems
