"""The paper's qualifier definitions, verbatim.

Each definition below is the source text of a figure from the paper
(figures 1, 3, 4, 5, 7, 12, plus the ``neg`` qualifier the paper
mentions but does not display, and the constants-are-untainted
augmentation of section 2.1.4/6.3).  They are parsed at import time, so
the module doubles as an integration test of the DSL parser.
"""

from __future__ import annotations

from repro.core.qualifiers.ast import QualifierDef, QualifierSet
from repro.core.qualifiers.parser import parse_qualifier

# Figure 1: positive integers.
POS_SOURCE = """
value qualifier pos(int Expr E)
  case E of
      decl int Const C:
        C, where C > 0
    | decl int Expr E1, E2:
        E1 * E2, where pos(E1) && pos(E2)
    | decl int Expr E1:
        -E1, where neg(E1)
  invariant value(E) > 0
"""

# The paper states neg's definition mirrors pos's and mutually refers to
# it (section 2.1.1).
NEG_SOURCE = """
value qualifier neg(int Expr E)
  case E of
      decl int Const C:
        C, where C < 0
    | decl int Expr E1:
        -E1, where pos(E1)
    | decl int Expr E1, E2:
        E1 * E2, where pos(E1) && neg(E2)
  invariant value(E) < 0
"""

# A natural companion to pos/neg in the paper's style: non-negative
# integers, closed under +, * and the pos subsumption.
NONNEG_SOURCE = """
value qualifier nonneg(int Expr E)
  case E of
      decl int Const C:
        C, where C >= 0
    | decl int Expr E1:
        E1, where pos(E1)
    | decl int Expr E1, E2:
        E1 + E2, where nonneg(E1) && nonneg(E2)
    | decl int Expr E1, E2:
        E1 * E2, where nonneg(E1) && nonneg(E2)
  invariant value(E) >= 0
"""

# Figure 3: nonzero integers, with the restrict clause guarding division.
NONZERO_SOURCE = """
value qualifier nonzero(int Expr E)
  case E of
      decl int Const C:
        C, where C != 0
    | decl int Expr E1:
        E1, where pos(E1)
    | decl int Expr E1, E2:
        E1 * E2, where nonzero(E1) && nonzero(E2)
  restrict
      decl int Expr E1, E2:
        E1 / E2, where nonzero(E2)
  invariant value(E) != 0
"""

# Figure 4: the flow qualifiers for taintedness.
UNTAINTED_SOURCE = """
value qualifier untainted(T Expr E)
"""

TAINTED_SOURCE = """
value qualifier tainted(T Expr E)
  case E of
      E
"""

# Section 2.1.4 / 6.3: untainted augmented so all constants are trusted.
UNTAINTED_WITH_CONSTS_SOURCE = """
value qualifier untainted(T Expr E)
  case E of
      decl T Const C:
        C
"""

# Section 2.1.4 also names the user/kernel flow qualifiers of Johnson &
# Wagner: user pointers must never be dereferenced in kernel space.
# Like taintedness they are flow qualifiers: kernel data may be treated
# as user-supplied, never the reverse, and a restrict clause forbids
# dereferencing anything not known to be a kernel pointer.
KERNEL_SOURCE = """
value qualifier kernel(T* Expr E)
"""

USER_SOURCE = """
value qualifier user(T* Expr E)
  case E of
      E
  restrict
      decl T* Expr E1:
        *E1, where kernel(E1)
"""

# Figure 5: unique pointers.
UNIQUE_SOURCE = """
ref qualifier unique(T* LValue L)
  assign L
      NULL
    | new
  disallow L
  invariant value(L) == NULL ||
            (isHeapLoc(value(L)) &&
             forall T** P: *P = value(L) => P = location(L))
"""

# Figure 7: unaliased variables.
UNALIASED_SOURCE = """
ref qualifier unaliased(T Var X)
  ondecl
  disallow &X
  invariant forall T** P: *P != location(X)
"""

# Figure 12: nonnull pointers.
NONNULL_SOURCE = """
value qualifier nonnull(T* Expr E)
  case E of
      decl T LValue L:
        &L
  restrict
      decl T* Expr E1:
        *E1, where nonnull(E1)
  invariant value(E) != NULL
"""

KERNEL: QualifierDef = parse_qualifier(KERNEL_SOURCE)
USER: QualifierDef = parse_qualifier(USER_SOURCE)

POS: QualifierDef = parse_qualifier(POS_SOURCE)
NONNEG: QualifierDef = parse_qualifier(NONNEG_SOURCE)
NEG: QualifierDef = parse_qualifier(NEG_SOURCE)
NONZERO: QualifierDef = parse_qualifier(NONZERO_SOURCE)
UNTAINTED: QualifierDef = parse_qualifier(UNTAINTED_SOURCE)
TAINTED: QualifierDef = parse_qualifier(TAINTED_SOURCE)
UNTAINTED_WITH_CONSTS: QualifierDef = parse_qualifier(UNTAINTED_WITH_CONSTS_SOURCE)
UNIQUE: QualifierDef = parse_qualifier(UNIQUE_SOURCE)
UNALIASED: QualifierDef = parse_qualifier(UNALIASED_SOURCE)
NONNULL: QualifierDef = parse_qualifier(NONNULL_SOURCE)


def standard_qualifiers(trust_constants: bool = False) -> QualifierSet:
    """The full library of paper qualifiers as a :class:`QualifierSet`.

    With ``trust_constants`` the untainted definition includes the
    constants-are-trusted case clause used in the paper's format-string
    experiment (section 6.3).
    """
    untainted = UNTAINTED_WITH_CONSTS if trust_constants else UNTAINTED
    return QualifierSet(
        [POS, NEG, NONNEG, NONZERO, NONNULL, TAINTED, untainted, UNIQUE, UNALIASED]
    )
