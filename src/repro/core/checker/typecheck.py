"""The extensible typechecker's qualifier-checking pass.

Flow-insensitive, as in the paper.  For every assignment (explicit, or
implicit through calls and returns) the checker validates:

* *value* qualifiers required by the target type, using the qualifier's
  ``case`` rules (recursively) plus the built-in subsumption rule
  τ q ≤ τ and programmer casts (which trigger run-time checks);
* *reference* qualifiers on the target, using ``assign`` rules
  (``ondecl`` qualifiers accept anything);
* deep qualifier agreement under pointers — there is no subtyping under
  ``ref`` types (section 2.1.2), so ``int pos*`` is not assignable to
  ``int*``.

Independently, every expression in the program is scanned against
``restrict`` clauses, and every use of a reference-qualified l-value is
scanned against ``disallow`` clauses (dereferences of a disallowed
l-value remain legal, section 2.2.1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cfront.ast import Loc
from repro.cfront.ctypes import (
    CType,
    PointerType,
    VoidType,
    deep_quals_equal,
    is_pointer_like,
    type_to_str,
)
from repro.cil import ir
from repro.cil.typesof import TypeError_, TypingContext, type_of_expr, type_of_lvalue
from repro.cil.cfg import BRANCH, RETURN, build_cfg
from repro.core.checker.diagnostics import Report, RuntimeCheck
from repro.core.checker.flow import GuardAnalysis, solve_guard_facts
from repro.core.checker.patterns import (
    match_assign_pattern,
    match_expr_pattern,
)
from repro.core.qualifiers import ast as Q
from repro.core.qualifiers.ast import QualifierSet


class QualifierChecker:
    """Checks one program against one qualifier set.

    ``flow_sensitive=True`` enables the guard-refinement extension the
    paper plans as future work (sections 6.1 and 8): branch conditions
    that syntactically match a qualifier's invariant establish that
    qualifier within the guarded branch, eliminating many casts.
    """

    def __init__(
        self,
        program: ir.Program,
        quals: QualifierSet,
        flow_sensitive: bool = False,
    ):
        self.program = program
        self.quals = quals
        self.flow_sensitive = flow_sensitive
        self._guards = GuardAnalysis(quals) if flow_sensitive else None
        self._facts: Set = set()
        self._addr_taken = frozenset()
        self.ref_qual_names: FrozenSet[str] = frozenset(
            d.name for d in quals.ref_qualifiers()
        )
        self.value_qual_names: FrozenSet[str] = frozenset(
            d.name for d in quals.value_qualifiers()
        )
        self.report = Report()
        self._restrict_rules: List[Tuple[Q.QualifierDef, Q.RestrictClause]] = [
            (d, r) for d in quals for r in d.restricts
        ]
        # Per-function state.
        self.func: Optional[ir.Function] = None
        self.ctx: Optional[TypingContext] = None
        self._memo: Dict[Tuple[ir.Expr, str], bool] = {}
        self._in_progress: Set[Tuple[ir.Expr, str]] = set()

    # -------------------------------------------------------------- driver

    def check(self, functions: Optional[Set[str]] = None) -> Report:
        """Check the program (or, with ``functions``, only the named
        subset — the incremental re-check path, which replays cached
        verdicts for everything else; see ``repro.api.Workspace``)."""
        for func in self.program.functions:
            if functions is not None and func.name not in functions:
                continue
            self._check_function(func)
        return self.report

    def _check_function(self, func: ir.Function) -> None:
        self.func = func
        self.ctx = TypingContext.for_function(
            self.program, func, ref_quals=self.ref_qual_names
        )
        self._memo = {}
        self._in_progress = set()
        self._facts = set()
        self._addr_taken = (
            GuardAnalysis.address_taken(func)
            if self.flow_sensitive
            else frozenset()
        )
        # One CFG + worklist solve per function; with flow sensitivity
        # off, the no-shape guard analysis contributes no facts but the
        # per-function work stats are still collected.
        guards = self._guards if self.flow_sensitive else _NO_GUARDS
        graph = build_cfg(func)
        solution = solve_guard_facts(graph, guards, self._addr_taken)
        self.report.dataflow[func.name] = solution.stats.to_dict()
        # Blocks are numbered in syntactic order, so iterating them in
        # index order reports diagnostics in source order.
        for block in graph.blocks:
            facts: Set = set(solution.block_entry[block.index])
            for instr in block.instrs:
                self._facts = facts
                self._check_instruction(instr)
                facts = GuardAnalysis.kills_of_instruction(
                    instr, facts, self._addr_taken
                )
            self._facts = facts
            term = block.terminator
            if term.kind == BRANCH:
                self._scan_expr(term.stmt.cond, term.stmt.loc)
            elif term.kind == RETURN:
                self._check_return(term.stmt)

    # -------------------------------------------------------- instructions

    def _check_instruction(self, instr: ir.Instruction) -> None:
        if isinstance(instr, ir.Set):
            self._scan_expr(instr.expr, instr.loc)
            self._scan_write_target(instr.lvalue, instr.loc)
            target_type = self._lvalue_type(instr.lvalue, instr.loc)
            if target_type is None:
                return
            self._check_ref_assign(target_type, instr, str(instr.lvalue), instr.loc)
            self._check_value_assign(
                target_type, instr.expr, "assign", str(instr.lvalue), instr.loc
            )
            self._check_deep_quals(target_type, instr.expr, instr.loc)
        elif isinstance(instr, ir.Call):
            self._check_call(instr)

    def _check_call(self, instr: ir.Call) -> None:
        for arg in instr.args:
            self._scan_expr(arg, instr.loc)
        sig = self.program.signatures.get(instr.func)
        if sig is not None:
            formal_names = self.program.formal_names.get(instr.func)
            for i, (arg, ptype) in enumerate(zip(instr.args, sig.params)):
                pname = formal_names[i] if formal_names and i < len(formal_names) else f"#{i + 1}"
                desc = f"argument {pname!r} of {instr.func}"
                self._check_value_assign(ptype, arg, "call", desc, instr.loc)
                self._check_deep_quals(ptype, arg, instr.loc)
                # Passing into a ref-qualified formal is an implicit
                # assignment and must obey the qualifier's assign rules.
                ref_target = ptype.quals & self.ref_qual_names
                if ref_target:
                    fake = ir.Set(ir.Lvalue(ir.VarHost("__formal")), arg, instr.loc)
                    self._check_ref_assign(ptype, fake, desc, instr.loc)
        if instr.result is not None:
            self._scan_write_target(instr.result, instr.loc)
            target_type = self._lvalue_type(instr.result, instr.loc)
            if target_type is None:
                return
            self._check_ref_assign(
                target_type, instr, str(instr.result), instr.loc
            )
            self._check_call_result_value_quals(target_type, instr, sig)

    def _check_call_result_value_quals(
        self,
        target_type: CType,
        instr: ir.Call,
        sig,
    ) -> None:
        """A call result has exactly its declared (or cast-to) type; value
        qualifiers required by the target must appear there."""
        required = target_type.quals & self.value_qual_names
        if instr.result_cast is not None:
            # The surface cast on a call result (``p = (T*)xmalloc(..)``)
            # is ignored for qualifier purposes, as CIL ignores it for
            # pattern matching (footnote 1): the declared return type's
            # qualifiers survive it.
            rhs_type = instr.result_cast
            if sig is not None:
                rhs_type = rhs_type.with_quals(
                    sig.ret.quals & self.value_qual_names
                )
            for q in instr.result_cast.quals & self.value_qual_names:
                self.report.runtime_checks.append(
                    RuntimeCheck(q, instr.loc, self.func.name)
                )
        elif sig is not None:
            rhs_type = sig.ret
        elif ir.is_allocation(instr):
            rhs_type = PointerType()
        else:
            rhs_type = None
        for q in sorted(required):
            if rhs_type is None or q not in rhs_type.quals:
                self.report.add(
                    "assign",
                    q,
                    f"{instr.result} requires {q}, but the result of the "
                    f"call to {instr.func} is not known to be {q}",
                    instr.loc,
                    self.func.name,
                )

    def _check_return(self, stmt: ir.Return) -> None:
        if stmt.expr is not None:
            self._scan_expr(stmt.expr, stmt.loc)
        ret = self.func.ret
        # A return is an implicit assignment into the caller's
        # destination (section 2.2.1), so ref-qualified return types are
        # governed by the qualifier's assign rules.
        ref_required = ret.quals & self.ref_qual_names
        if ref_required and stmt.expr is not None:
            fake = ir.Set(ir.Lvalue(ir.VarHost("__return")), stmt.expr, stmt.loc)
            self._check_ref_assign(ret, fake, "return value", stmt.loc)
        required = ret.quals & self.value_qual_names
        if not required:
            return
        if stmt.expr is None:
            for q in sorted(required):
                self.report.add(
                    "return", q, "return without a value", stmt.loc, self.func.name
                )
            return
        self._check_value_assign(ret, stmt.expr, "return", "return value", stmt.loc)
        self._check_deep_quals(ret, stmt.expr, stmt.loc)

    # --------------------------------------------------- value-qualifier core

    def _check_value_assign(
        self,
        target_type: CType,
        rhs: ir.Expr,
        kind: str,
        target_desc: str,
        loc: Loc,
    ) -> None:
        required = target_type.quals & self.value_qual_names
        for q in sorted(required):
            if not self.has_qual(rhs, q):
                self.report.add(
                    kind,
                    q,
                    f"{target_desc} requires {q}, but {rhs} is not known to be {q}",
                    loc,
                    self.func.name,
                )

    def has_qual(self, expr: ir.Expr, qual: str) -> bool:
        """May ``expr`` be given qualifier ``qual``?

        Combines the declared-type rule, the cast rule (recording a
        run-time check), the built-in conditional rule, and the
        user-defined case rules.  Recursion through mutually-referring
        qualifiers computes a least fixed point: a cycle contributes
        False.
        """
        # Guard facts make the judgment program-point-dependent, so the
        # current fact set is part of the memo key.
        fact_token = frozenset(self._facts) if self.flow_sensitive else None
        key = (expr, qual, fact_token)
        if key in self._memo:
            return self._memo[key]
        if key in self._in_progress:
            return False
        self._in_progress.add(key)
        try:
            result = self._has_qual_raw(expr, qual)
        finally:
            self._in_progress.discard(key)
        self._memo[key] = result
        return result

    def _has_qual_raw(self, expr: ir.Expr, qual: str) -> bool:
        qdef = self.quals.get(qual)
        if qdef is None or not qdef.is_value:
            return False
        # A dominating guard established the invariant for this l-value.
        if (
            self.flow_sensitive
            and isinstance(expr, ir.Lval)
            and (expr.lvalue, qual) in self._facts
        ):
            return True
        # Programmer cast: permitted, with a run-time check inserted.
        # (Checked before the declared-type rule so the check is
        # recorded: the cast *is* where the qualifier enters.)
        if isinstance(expr, ir.CastE) and qual in expr.to_type.quals:
            self.report.runtime_checks.append(
                RuntimeCheck(qual, Loc(), self.func.name)
            )
            return True
        # Declared type carries the qualifier.
        try:
            etype = type_of_expr(self.ctx, expr)
        except TypeError_:
            etype = None
        if etype is not None and qual in etype.quals:
            return True
        if isinstance(expr, ir.CastE):
            # Shape-preserving casts are transparent to qualifiers.
            try:
                inner = type_of_expr(self.ctx, expr.operand)
            except TypeError_:
                inner = None
            if inner is not None and expr.to_type.same_shape(inner):
                if self.has_qual(expr.operand, qual):
                    return True
        # Built-in rule for pure conditionals: both branches qualify.
        if isinstance(expr, ir.CondE):
            if self.has_qual(expr.then, qual) and self.has_qual(expr.otherwise, qual):
                return True
        # Logical memory model (section 3.3): p + i has p's type, hence
        # p's qualifiers.  (The declared-type rule already covers the
        # annotated case; this extends it to guard-derived facts.)
        if isinstance(expr, ir.BinOp) and expr.op == "ptradd":
            if self.has_qual(expr.left, qual):
                return True
        # User-defined case rules.
        for clause in qdef.cases:
            bindings = match_expr_pattern(qdef, clause, expr, self.ctx)
            if bindings is not None and self._eval_pred(clause.predicate, bindings):
                return True
        return False

    def _eval_pred(self, pred: Q.Pred, bindings) -> bool:
        if isinstance(pred, Q.PredTrue):
            return True
        if isinstance(pred, Q.PredAnd):
            return self._eval_pred(pred.left, bindings) and self._eval_pred(
                pred.right, bindings
            )
        if isinstance(pred, Q.PredOr):
            return self._eval_pred(pred.left, bindings) or self._eval_pred(
                pred.right, bindings
            )
        if isinstance(pred, Q.PredNot):
            return not self._eval_pred(pred.operand, bindings)
        if isinstance(pred, Q.PredQual):
            fragment = bindings.get(pred.var)
            if fragment is None:
                return False
            if isinstance(fragment, ir.Lvalue):
                fragment = ir.Lval(fragment)
            return self.has_qual(fragment, pred.qualifier)
        if isinstance(pred, Q.PredCmp):
            left = self._eval_aexpr(pred.left, bindings)
            right = self._eval_aexpr(pred.right, bindings)
            return _compare(pred.op, left, right)
        raise TypeError(f"unknown predicate {pred!r}")

    def _eval_aexpr(self, aexpr: Q.AExpr, bindings):
        if isinstance(aexpr, Q.ANum):
            return ("int", aexpr.value)
        if isinstance(aexpr, Q.ANull):
            return ("null", None)
        if isinstance(aexpr, Q.AVar):
            fragment = bindings.get(aexpr.name)
            if isinstance(fragment, ir.IntConst):
                return ("int", fragment.value)
            if isinstance(fragment, ir.NullConst):
                return ("null", None)
            if isinstance(fragment, ir.StrConst):
                return ("str", fragment.value)
            return None
        if isinstance(aexpr, Q.ABin):
            left = self._eval_aexpr(aexpr.left, bindings)
            right = self._eval_aexpr(aexpr.right, bindings)
            if (
                left is None
                or right is None
                or left[0] != "int"
                or right[0] != "int"
            ):
                return None
            lv, rv = left[1], right[1]
            try:
                if aexpr.op == "+":
                    return ("int", lv + rv)
                if aexpr.op == "-":
                    return ("int", lv - rv)
                if aexpr.op == "*":
                    return ("int", lv * rv)
                if aexpr.op == "/":
                    return ("int", _c_div(lv, rv))
                if aexpr.op == "%":
                    return ("int", _c_mod(lv, rv))
            except ZeroDivisionError:
                return None
            return None
        raise TypeError(f"unknown arithmetic operand {aexpr!r}")

    # ------------------------------------------------ reference-qualifier core

    def _check_ref_assign(
        self,
        target_type: CType,
        instr: ir.Instruction,
        target_desc: str,
        loc: Loc,
    ) -> None:
        ref_quals = target_type.quals & self.ref_qual_names
        for q in sorted(ref_quals):
            qdef = self.quals[q]
            if qdef.ondecl:
                continue  # the variable's contents are unrestricted
            if self._rhs_has_unchecked_ref_cast(instr, q):
                continue  # casts involving reference qualifiers are unchecked
            if isinstance(instr, ir.Call):
                sig = self.program.signatures.get(instr.func)
                if sig is not None and q in sig.ret.quals:
                    # The callee's declared (and checked) return type
                    # already carries the qualifier.
                    continue
            matched = False
            for clause in qdef.assigns:
                bindings = match_assign_pattern(qdef, clause, instr, self.ctx)
                if bindings is not None and self._eval_pred(
                    clause.predicate, bindings
                ):
                    matched = True
                    break
            if not matched:
                rhs = instr.expr if isinstance(instr, ir.Set) else f"call to {instr.func}"
                self.report.add(
                    "assign",
                    q,
                    f"assignment of {rhs} to {q} l-value {target_desc} "
                    f"matches no assign rule",
                    loc,
                    self.func.name,
                )

    def _rhs_has_unchecked_ref_cast(self, instr: ir.Instruction, qual: str) -> bool:
        if isinstance(instr, ir.Set) and isinstance(instr.expr, ir.CastE):
            return qual in instr.expr.to_type.quals
        if isinstance(instr, ir.Call) and instr.result_cast is not None:
            return qual in instr.result_cast.quals
        return False

    # ----------------------------------------------------- expression scans

    def _scan_expr(self, expr: ir.Expr, loc: Loc) -> None:
        """Scan an expression read: restrict rules on every node, and
        disallow rules with dereference-context awareness."""
        for node in ir.subexprs(expr):
            self._check_restricts(node, loc)
        self._scan_disallow_expr(expr, loc)

    def _scan_write_target(self, lv: ir.Lvalue, loc: Loc) -> None:
        """Scan the l-value being written: its dereference site is subject
        to restrict rules, and its inner expressions to all rules, but
        the target itself is not a 'reference' for disallow purposes."""
        for node in ir.subexprs(ir.Lval(lv)):
            self._check_restricts(node, loc)
        self._scan_disallow_lvalue_inner(lv, loc)

    def _check_restricts(self, node: ir.Expr, loc: Loc) -> None:
        for qdef, clause in self._restrict_rules:
            bindings = match_expr_pattern(qdef, clause, node, self.ctx)
            if bindings is not None and not self._eval_pred(
                clause.predicate, bindings
            ):
                self.report.add(
                    "restrict",
                    qdef.name,
                    f"expression {node} violates restrict rule "
                    f"({clause.pattern} requires {clause.predicate})",
                    loc,
                    self.func.name,
                )

    # Disallow scanning distinguishes contexts: reading an l-value is a
    # 'reference'; reading it *in order to dereference it* is not
    # (section 2.2.1: a unique l-value may still be dereferenced).

    def _scan_disallow_expr(self, expr: ir.Expr, loc: Loc) -> None:
        if isinstance(expr, ir.Lval):
            self._disallow_reference(expr.lvalue, loc)
            self._scan_disallow_lvalue_inner(expr.lvalue, loc)
        elif isinstance(expr, ir.AddrOf):
            self._disallow_address_of(expr.lvalue, loc)
            self._scan_disallow_lvalue_inner(expr.lvalue, loc)
        elif isinstance(expr, ir.UnOp):
            self._scan_disallow_expr(expr.operand, loc)
        elif isinstance(expr, ir.BinOp):
            self._scan_disallow_expr(expr.left, loc)
            self._scan_disallow_expr(expr.right, loc)
        elif isinstance(expr, ir.CastE):
            if not (expr.to_type.quals & self.ref_qual_names):
                self._scan_disallow_expr(expr.operand, loc)
            # Casts involving reference qualifiers are unchecked (2.2.3).
        elif isinstance(expr, ir.CondE):
            self._scan_disallow_expr(expr.cond, loc)
            self._scan_disallow_expr(expr.then, loc)
            self._scan_disallow_expr(expr.otherwise, loc)

    def _scan_disallow_lvalue_inner(self, lv: ir.Lvalue, loc: Loc) -> None:
        if isinstance(lv.host, ir.MemHost):
            self._scan_disallow_addr(lv.host.addr, loc)
        off = lv.offset
        while not isinstance(off, ir.NoOffset):
            if isinstance(off, ir.IndexOff):
                self._scan_disallow_expr(off.index, loc)
            off = off.rest

    def _scan_disallow_addr(self, addr: ir.Expr, loc: Loc) -> None:
        """Scan an expression whose value is immediately dereferenced."""
        if isinstance(addr, ir.Lval):
            # Reading this l-value only to dereference it: allowed.
            self._scan_disallow_lvalue_inner(addr.lvalue, loc)
        elif isinstance(addr, ir.BinOp) and addr.op == "ptradd":
            self._scan_disallow_addr(addr.left, loc)
            self._scan_disallow_expr(addr.right, loc)
        elif isinstance(addr, ir.CastE):
            self._scan_disallow_addr(addr.operand, loc)
        elif isinstance(addr, ir.AddrOf):
            self._disallow_address_of(addr.lvalue, loc)
            self._scan_disallow_lvalue_inner(addr.lvalue, loc)
        else:
            self._scan_disallow_expr(addr, loc)

    def _disallow_reference(self, lv: ir.Lvalue, loc: Loc) -> None:
        lv_type = self._lvalue_type(lv, loc)
        if lv_type is None:
            return
        for q in sorted(lv_type.quals & self.ref_qual_names):
            qdef = self.quals[q]
            if qdef.disallow is not None and qdef.disallow.forbid_reference:
                self.report.add(
                    "disallow",
                    q,
                    f"{q} l-value {lv} may not be referred to",
                    loc,
                    self.func.name,
                )

    def _disallow_address_of(self, lv: ir.Lvalue, loc: Loc) -> None:
        lv_type = self._lvalue_type(lv, loc)
        if lv_type is None:
            return
        for q in sorted(lv_type.quals & self.ref_qual_names):
            qdef = self.quals[q]
            if qdef.disallow is not None and qdef.disallow.forbid_address_of:
                self.report.add(
                    "disallow",
                    q,
                    f"{q} l-value {lv} may not have its address taken",
                    loc,
                    self.func.name,
                )

    # --------------------------------------------------------------- helpers

    def _lvalue_type(self, lv: ir.Lvalue, loc: Loc) -> Optional[CType]:
        try:
            return type_of_lvalue(self.ctx, lv)
        except TypeError_ as exc:
            self.report.add("base", "-", str(exc), loc, self.func.name)
            return None

    def _check_deep_quals(self, target_type: CType, rhs: ir.Expr, loc: Loc) -> None:
        """No subtyping under pointers: nested qualifiers must agree
        exactly (section 2.1.2)."""
        if isinstance(rhs, (ir.NullConst,)):
            return
        if isinstance(rhs, ir.CastE):
            rhs_type = rhs.to_type  # the cast's type governs, as in C
        else:
            try:
                rhs_type = type_of_expr(self.ctx, rhs)
            except TypeError_:
                return
        if not (is_pointer_like(target_type) and is_pointer_like(rhs_type)):
            return
        if isinstance(rhs, ir.IntConst) and rhs.value == 0:
            return
        # void* converts implicitly in either direction, as in C.
        if isinstance(getattr(target_type, "pointee", None), VoidType) or isinstance(
            getattr(rhs_type, "pointee", None), VoidType
        ):
            return
        if not deep_quals_equal(target_type, rhs_type):
            self.report.add(
                "base",
                "-",
                f"pointer assignment changes nested qualifiers: "
                f"{type_to_str(rhs_type)} is not assignable to "
                f"{type_to_str(target_type)} (no subtyping under pointers)",
                loc,
                self.func.name,
            )


#: Guard analysis over the empty qualifier set: derives no facts.
#: Used when flow sensitivity is off, so the same solver runs (and the
#: same stats are collected) without refining anything.
_NO_GUARDS = GuardAnalysis(QualifierSet([]))


def _compare(op: str, left, right) -> bool:
    if left is None or right is None:
        return False
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if left[0] != "int" or right[0] != "int":
        return False
    lv, rv = left[1], right[1]
    return {
        ">": lv > rv,
        "<": lv < rv,
        ">=": lv >= rv,
        "<=": lv <= rv,
    }[op]


def _c_div(a: int, b: int) -> int:
    """C semantics: truncation toward zero."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a: int, b: int) -> int:
    return a - _c_div(a, b) * b


def check_program(program: ir.Program, quals: QualifierSet) -> Report:
    """Run qualifier checking over ``program`` and return the report."""
    return QualifierChecker(program, quals).check()
