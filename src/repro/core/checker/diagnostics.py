"""Diagnostics produced by qualifier checking.

As in the paper's implementation, type errors are reported as warnings
and checking continues (section 3.2), so a single run reports every
violation in the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cfront.ast import Loc


@dataclass(frozen=True)
class Diagnostic:
    """One qualifier-checking warning."""

    kind: str  # 'assign', 'restrict', 'disallow', 'call', 'return', 'base'
    qualifier: str
    message: str
    loc: Loc = field(default_factory=Loc)
    function: str = ""

    def __str__(self) -> str:
        where = f"{self.function}: " if self.function else ""
        return f"{where}{self.loc}: [{self.qualifier}/{self.kind}] {self.message}"


@dataclass
class RuntimeCheck:
    """A run-time check the instrumenter must insert for a cast to a
    value-qualified type (section 2.1.3)."""

    qualifier: str
    loc: Loc
    function: str

    def __str__(self) -> str:
        return f"{self.function}: {self.loc}: runtime check for cast to {self.qualifier}"


@dataclass
class Report:
    """The result of running the extensible typechecker."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    runtime_checks: List[RuntimeCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    @property
    def error_count(self) -> int:
        return len(self.diagnostics)

    def errors_for(self, qualifier: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.qualifier == qualifier]

    def add(
        self,
        kind: str,
        qualifier: str,
        message: str,
        loc: Loc = Loc(),
        function: str = "",
    ) -> None:
        self.diagnostics.append(Diagnostic(kind, qualifier, message, loc, function))

    def summary(self) -> str:
        lines = [f"{len(self.diagnostics)} qualifier warning(s)"]
        lines.extend(str(d) for d in self.diagnostics)
        if self.runtime_checks:
            lines.append(f"{len(self.runtime_checks)} runtime check(s) inserted")
        return "\n".join(lines)
