"""Diagnostics produced by qualifier checking.

As in the paper's implementation, type errors are reported as warnings
and checking continues (section 3.2), so a single run reports every
violation in the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cfront.ast import Loc

#: Stable machine-readable codes per diagnostic kind.  Q0xx are
#: pipeline/input failures (reported by the batch harness), Q1xx are
#: qualifier-rule violations from the typechecker.  Codes are part of
#: the tool's output contract (--format json); never renumber, only
#: append.
DIAGNOSTIC_CODES: Dict[str, str] = {
    "parse": "Q001",  # C syntax error (including panic-mode recoveries)
    "lower": "Q002",  # surface AST -> CIL lowering failure
    "qualfile": "Q003",  # malformed qualifier definition file
    "io": "Q004",  # unreadable / undecodable input
    "internal": "Q005",  # survived internal crash (CRASH verdict)
    "timeout": "Q006",  # unit exceeded its wall-clock deadline
    "quarantine": "Q007",  # poison unit: killed repeated workers (GAVE_UP)
    "assign": "Q101",
    "restrict": "Q102",
    "disallow": "Q103",
    "call": "Q104",
    "return": "Q105",
    "base": "Q106",
}

_UNKNOWN_CODE = "Q999"


def code_for(kind: str) -> str:
    """The stable ``Q###`` code for a diagnostic kind."""
    return DIAGNOSTIC_CODES.get(kind, _UNKNOWN_CODE)


@dataclass(frozen=True)
class Diagnostic:
    """One qualifier-checking warning."""

    kind: str  # 'assign', 'restrict', 'disallow', 'call', 'return', 'base'
    qualifier: str
    message: str
    loc: Loc = field(default_factory=Loc)
    function: str = ""
    severity: str = "warning"  # the paper reports violations as warnings

    @property
    def code(self) -> str:
        return code_for(self.kind)

    def __str__(self) -> str:
        where = f"{self.function}: " if self.function else ""
        return (
            f"{where}{self.loc}: {self.code} "
            f"[{self.qualifier}/{self.kind}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "kind": self.kind,
            "qualifier": self.qualifier,
            "message": self.message,
            "severity": self.severity,
            "loc": str(self.loc),
            "function": self.function,
        }


@dataclass
class RuntimeCheck:
    """A run-time check the instrumenter must insert for a cast to a
    value-qualified type (section 2.1.3)."""

    qualifier: str
    loc: Loc
    function: str

    def __str__(self) -> str:
        return f"{self.function}: {self.loc}: runtime check for cast to {self.qualifier}"


@dataclass
class Report:
    """The result of running the extensible typechecker."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    runtime_checks: List[RuntimeCheck] = field(default_factory=list)
    # Per-function solver work counters (blocks, edges, iterations, ms)
    # from the shared dataflow engine — additive report data, keyed by
    # function name.
    dataflow: Dict[str, dict] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    @property
    def warning_count(self) -> int:
        """Diagnostics with warning severity — the paper's default for
        every rule violation (checking continues past them)."""
        return sum(1 for d in self.diagnostics if d.severity == "warning")

    @property
    def error_count(self) -> int:
        """Total diagnostics, regardless of severity.

        Historically the CLI printed ``error_count`` but keyed its exit
        status on ``diagnostics`` being non-empty; both are the same
        quantity, and this property is the single source of truth for
        "did checking find anything".
        """
        return len(self.diagnostics)

    def to_dict(self) -> dict:
        return {
            "warnings": self.warning_count,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "runtime_checks": len(self.runtime_checks),
        }

    def errors_for(self, qualifier: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.qualifier == qualifier]

    def add(
        self,
        kind: str,
        qualifier: str,
        message: str,
        loc: Loc = Loc(),
        function: str = "",
    ) -> None:
        self.diagnostics.append(Diagnostic(kind, qualifier, message, loc, function))

    def summary(self) -> str:
        lines = [f"{len(self.diagnostics)} qualifier warning(s)"]
        lines.extend(str(d) for d in self.diagnostics)
        if self.runtime_checks:
            lines.append(f"{len(self.runtime_checks)} runtime check(s) inserted")
        return "\n".join(lines)
