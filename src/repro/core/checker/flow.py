"""Flow-sensitive guard refinement (the paper's section 8 future work).

The flow-insensitive checker cannot validate the grep idiom of
section 6.1::

    if ((t = d->trans[works]) != NULL) {
        works = t[*p];        /* safe, but needs a cast */
    }

This module derives *guard facts* from branch conditions: a condition
that syntactically matches a value qualifier's invariant establishes
that qualifier for the tested l-value within the guarded branch.  The
mapping is generic over the qualifier library:

* invariant ``value(E) != NULL`` ⇐ guards ``p != NULL``, ``p``;
* invariant ``value(E) > 0``     ⇐ guard ``x > 0``;
* invariant ``value(E) != 0``    ⇐ guards ``x != 0``, ``x``;
* ... and the corresponding negations for else-branches.

Facts are killed by assignments to the guarded l-value; writes through
pointers conservatively kill every fact about memory and about
address-taken variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cil import ir
from repro.core.qualifiers import ast as Q
from repro.core.qualifiers.ast import QualifierSet

#: A fact: this l-value currently satisfies this qualifier's invariant.
Fact = Tuple[ir.Lvalue, str]


@dataclass(frozen=True)
class _CmpShape:
    """A normalized comparison invariant: value(E) <op> <int>."""

    op: str
    bound: int


def _invariant_shape(qdef: Q.QualifierDef) -> Optional[_CmpShape]:
    """Extract a guardable shape from a value qualifier's invariant."""
    inv = qdef.invariant
    if not isinstance(inv, Q.ICmp):
        return None
    if not isinstance(inv.left, Q.IValue):
        return None
    if isinstance(inv.right, Q.INum):
        return _CmpShape(inv.op, inv.right.value)
    if isinstance(inv.right, Q.INull):
        return _CmpShape(inv.op, 0)
    return None


_NEGATED = {"==": "!=", "!=": "==", "<": ">=", ">": "<=", "<=": ">", ">=": "<"}


def _implies(established_op: str, established_bound: int, shape: _CmpShape) -> bool:
    """Does ``v <op> bound`` (known) imply ``v <shape.op> shape.bound``?

    Decided exactly over the integers for the handful of comparison
    pairs guards produce."""
    op, b = established_op, established_bound
    t_op, t_b = shape.op, shape.bound
    # Normalize: express the established fact as a set description.
    if op == t_op and b == t_b:
        return True
    checks = {
        # established -> candidate target checks
        (">", "!="): lambda: b >= t_b,        # v > b, b >= t implies v != t
        (">", ">"): lambda: b >= t_b,
        (">", ">="): lambda: b >= t_b - 1,
        ("<", "!="): lambda: b <= t_b,
        ("<", "<"): lambda: b <= t_b,
        ("<", "<="): lambda: b <= t_b + 1,
        (">=", ">"): lambda: b > t_b,
        (">=", ">="): lambda: b >= t_b,
        (">=", "!="): lambda: b > t_b,
        ("<=", "<"): lambda: b < t_b,
        ("<=", "<="): lambda: b <= t_b,
        ("<=", "!="): lambda: b < t_b,
        ("==", "!="): lambda: b != t_b,
        ("==", ">"): lambda: b > t_b,
        ("==", "<"): lambda: b < t_b,
        ("==", ">="): lambda: b >= t_b,
        ("==", "<="): lambda: b <= t_b,
    }
    fn = checks.get((op, t_op))
    return bool(fn and fn())


class GuardAnalysis:
    """Derives then/else guard facts from branch conditions."""

    def __init__(self, quals: QualifierSet):
        self.shapes: Dict[str, _CmpShape] = {}
        for qdef in quals.value_qualifiers():
            shape = _invariant_shape(qdef)
            if shape is not None:
                self.shapes[qdef.name] = shape

    # --------------------------------------------------------- condition

    def facts_of_condition(
        self, cond: ir.Expr
    ) -> Tuple[Set[Fact], Set[Fact]]:
        """(facts holding when cond is true, facts when it is false)."""
        then_facts: Set[Fact] = set()
        else_facts: Set[Fact] = set()
        self._collect(cond, positive=True, out=then_facts)
        self._collect(cond, positive=False, out=else_facts)
        return then_facts, else_facts

    def _collect(self, cond: ir.Expr, positive: bool, out: Set[Fact]) -> None:
        if isinstance(cond, ir.BinOp):
            if cond.op == "&&":
                if positive:  # both conjuncts hold
                    self._collect(cond.left, True, out)
                    self._collect(cond.right, True, out)
                return
            if cond.op == "||":
                if not positive:  # both disjuncts fail
                    self._collect(cond.left, False, out)
                    self._collect(cond.right, False, out)
                return
            self._collect_comparison(cond, positive, out)
            return
        if isinstance(cond, ir.UnOp) and cond.op == "!":
            self._collect(cond.operand, not positive, out)
            return
        if isinstance(cond, ir.Lval):
            # `if (p)` asserts p != 0 in the then-branch.
            self._established(cond.lvalue, "!=", 0, positive, out)

    def _collect_comparison(
        self, cond: ir.BinOp, positive: bool, out: Set[Fact]
    ) -> None:
        op = cond.op
        if op not in ("==", "!=", "<", ">", "<=", ">="):
            return
        lv, bound, op_on_lv = None, None, None
        if isinstance(cond.left, ir.Lval) and _const_int(cond.right) is not None:
            lv, bound, op_on_lv = cond.left.lvalue, _const_int(cond.right), op
        elif isinstance(cond.right, ir.Lval) and _const_int(cond.left) is not None:
            lv, bound = cond.right.lvalue, _const_int(cond.left)
            op_on_lv = _FLIPPED[op]
        if lv is None:
            return
        self._established(lv, op_on_lv, bound, positive, out)

    def _established(
        self,
        lv: ir.Lvalue,
        op: str,
        bound: int,
        positive: bool,
        out: Set[Fact],
    ) -> None:
        if not positive:
            op = _NEGATED[op]
        for qual, shape in self.shapes.items():
            if _implies(op, bound, shape):
                out.add((lv, qual))

    # -------------------------------------------------------------- kills

    @staticmethod
    def kills_of_instruction(
        instr: ir.Instruction,
        facts: Set[Fact],
        address_taken: FrozenSet[str] = frozenset(),
    ) -> Set[Fact]:
        """Facts surviving one instruction."""
        target: Optional[ir.Lvalue] = None
        if isinstance(instr, ir.Set):
            target = instr.lvalue
        elif isinstance(instr, ir.Call):
            target = instr.result
        if target is None:
            return facts
        if isinstance(target.host, ir.MemHost) or not isinstance(
            target.offset, ir.NoOffset
        ):
            # A write through memory may alias any non-variable fact and
            # any address-taken variable.
            return {
                f
                for f in facts
                if f[0].is_plain_var and f[0].var_name not in address_taken
            }
        return {f for f in facts if f[0] != target}

    @staticmethod
    def address_taken(func: ir.Function) -> FrozenSet[str]:
        """Variables whose address is taken anywhere in the function;
        memory writes may alias them, so their facts die on such writes."""
        taken: Set[str] = set()

        def scan_expr(expr: ir.Expr) -> None:
            for node in ir.subexprs(expr):
                if isinstance(node, ir.AddrOf) and node.lvalue.is_plain_var:
                    taken.add(node.lvalue.var_name)

        for stmt in ir.walk_stmts(func.body):
            if isinstance(stmt, ir.Instr):
                for instr in stmt.instrs:
                    if isinstance(instr, ir.Set):
                        scan_expr(instr.expr)
                    elif isinstance(instr, ir.Call):
                        for a in instr.args:
                            scan_expr(a)
            elif isinstance(stmt, (ir.If, ir.While)):
                scan_expr(stmt.cond)
            elif isinstance(stmt, ir.Return) and stmt.expr is not None:
                scan_expr(stmt.expr)
        return frozenset(taken)


_FLIPPED = {"==": "==", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}


def _const_int(expr: ir.Expr) -> Optional[int]:
    if isinstance(expr, ir.IntConst):
        return expr.value
    if isinstance(expr, ir.NullConst):
        return 0
    return None


# --------------------------------------------------------- worklist client


@dataclass
class GuardSolution:
    """The guard-fact fixpoint of one function.

    ``block_entry`` maps block index → facts holding on entry
    (unreachable blocks resolve to *no* facts, never to the solver's
    UNIVERSE sentinel).  ``point`` maps ``id(instruction)`` → facts
    holding immediately *before* that instruction, and
    ``id(terminator statement)`` → facts at the block's terminator, so
    clients that walk the structured statement tree (instrumentation,
    annotation) can look facts up without re-running kills."""

    block_entry: Dict[int, FrozenSet[Fact]] = field(default_factory=dict)
    point: Dict[int, FrozenSet[Fact]] = field(default_factory=dict)
    stats: "SolverStats" = None  # type: ignore[assignment]


def solve_guard_facts(
    cfg: "CFG",
    guards: GuardAnalysis,
    address_taken: FrozenSet[str] = frozenset(),
) -> GuardSolution:
    """Run the guard-refinement analysis over one function's CFG.

    This is a forward *must* analysis: join is set intersection, so a
    fact survives a merge only when every incoming path establishes
    it.  Facts enter along guarded branch edges
    (:meth:`GuardAnalysis.facts_of_condition`) and die at assignments
    (:meth:`GuardAnalysis.kills_of_instruction`) — the same vocabulary
    the structured walk used, now with sound treatment of ``goto``,
    loops, and unreachable code for free."""
    from repro.dataflow.lattice import UNIVERSE, MustSetLattice
    from repro.dataflow.solver import ForwardSolver

    cond_facts: Dict[int, Tuple[Set[Fact], Set[Fact]]] = {}

    def facts_for(edge) -> Set[Fact]:
        stmt = edge.src.terminator.stmt
        key = id(stmt)
        if key not in cond_facts:
            cond_facts[key] = guards.facts_of_condition(edge.cond)
        then_facts, else_facts = cond_facts[key]
        return then_facts if edge.guard else else_facts

    def transfer(block, facts):
        if facts is UNIVERSE:
            return UNIVERSE
        live: Set[Fact] = set(facts)
        for instr in block.instrs:
            live = GuardAnalysis.kills_of_instruction(
                instr, live, address_taken
            )
        return frozenset(live)

    def edge_transfer(edge, out):
        if edge.guard is None or out is UNIVERSE:
            return out
        return frozenset(out | facts_for(edge))

    solver = ForwardSolver(
        cfg,
        MustSetLattice(),
        transfer,
        edge_transfer,
        entry_value=frozenset(),
    )
    result = solver.solve()

    solution = GuardSolution(stats=result.stats)
    for block in cfg.blocks:
        facts = result.block_in[block.index]
        if facts is UNIVERSE:  # unreachable: assume nothing
            facts = frozenset()
        solution.block_entry[block.index] = facts
        live = set(facts)
        for instr in block.instrs:
            solution.point[id(instr)] = frozenset(live)
            live = GuardAnalysis.kills_of_instruction(
                instr, live, address_taken
            )
        if block.terminator.stmt is not None:
            solution.point[id(block.terminator.stmt)] = frozenset(live)
    return solution
