"""Matching expression patterns against IR expressions (section 3.2).

A pattern such as ``E1 * E2`` is matched against a CIL expression; on
success, pattern variables are bound to program fragments, and each
binding is checked against its declared type and classifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.cfront.ctypes import (
    CType,
    FloatType,
    IntType,
    PointerType,
    ArrayType,
    VoidType,
)
from repro.cil import ir
from repro.cil.typesof import TypeError_, TypingContext, type_of_expr, type_of_lvalue
from repro.core.qualifiers import ast as Q


#: A pattern variable binds either an expression or (for the LValue and
#: Var classifiers) an l-value.
Binding = Union[ir.Expr, ir.Lvalue]
MatchBinding = Dict[str, Binding]


def dtype_matches(dtype: Q.DType, ctype: CType) -> bool:
    """Does a DSL type pattern match a concrete C type?

    Type variables (``T``) match any type.  ``int`` matches any integer
    kind (char included, mirroring C's integer conversions).  Pointer
    patterns match pointers and arrays (the logical memory model treats
    them alike).
    """
    if isinstance(dtype, Q.DTypeVar):
        return True
    if isinstance(dtype, Q.DInt):
        return isinstance(ctype, (IntType, FloatType))
    if isinstance(dtype, Q.DVoid):
        return isinstance(ctype, VoidType)
    if isinstance(dtype, Q.DPtr):
        if isinstance(ctype, PointerType):
            return dtype_matches(dtype.inner, ctype.pointee)
        if isinstance(ctype, ArrayType):
            return dtype_matches(dtype.inner, ctype.elem)
        return False
    raise TypeError(f"unknown DSL type {dtype!r}")


@dataclass
class _ClauseEnv:
    """Declarations in scope for one clause: the clause's own ``decl``s
    plus the qualifier's subject variable."""

    decls: Dict[str, Q.VarDecl]

    @classmethod
    def for_clause(cls, qdef: Q.QualifierDef, clause) -> "_ClauseEnv":
        decls = {d.name: d for d in clause.decls}
        decls.setdefault(
            qdef.var, Q.VarDecl(qdef.var, qdef.dtype, qdef.classifier)
        )
        return cls(decls)

    def decl(self, name: str) -> Q.VarDecl:
        try:
            return self.decls[name]
        except KeyError:
            raise KeyError(
                f"pattern variable {name!r} has no declaration"
            ) from None


def _classify_ok(
    decl: Q.VarDecl, fragment: Binding, ctx: TypingContext
) -> bool:
    """Check a bound fragment against its declared classifier and type."""
    if decl.classifier is Q.Classifier.CONST:
        if not isinstance(fragment, (ir.IntConst, ir.StrConst, ir.NullConst)):
            return False
        return dtype_matches(decl.dtype, _const_type(fragment))
    if decl.classifier is Q.Classifier.VAR:
        if isinstance(fragment, ir.Lval):
            fragment = fragment.lvalue
        if not isinstance(fragment, ir.Lvalue) or not fragment.is_plain_var:
            return False
        return _lvalue_type_ok(decl, fragment, ctx)
    if decl.classifier is Q.Classifier.LVALUE:
        if isinstance(fragment, ir.Lval):
            fragment = fragment.lvalue
        if not isinstance(fragment, ir.Lvalue):
            return False
        return _lvalue_type_ok(decl, fragment, ctx)
    # Expr: any side-effect-free expression of a matching type.
    if isinstance(fragment, ir.Lvalue):
        fragment = ir.Lval(fragment)
    try:
        ctype = type_of_expr(ctx, fragment)
    except TypeError_:
        return False
    return dtype_matches(decl.dtype, ctype)


def _lvalue_type_ok(decl: Q.VarDecl, lv: ir.Lvalue, ctx: TypingContext) -> bool:
    try:
        ctype = type_of_lvalue(ctx, lv)
    except TypeError_:
        return False
    return dtype_matches(decl.dtype, ctype)


def _const_type(fragment: ir.Expr) -> CType:
    if isinstance(fragment, ir.IntConst):
        return IntType()
    if isinstance(fragment, ir.StrConst):
        return PointerType(pointee=IntType(kind="char"))
    return PointerType(pointee=VoidType())


# Binary operators considered equal for matching purposes: the logical
# memory model types p + i like p, and lowering marks such additions as
# 'ptradd'.
_OP_ALIASES = {"ptradd": "+"}


def _ops_equal(pattern_op: str, expr_op: str) -> bool:
    return pattern_op == _OP_ALIASES.get(expr_op, expr_op)


def match_expr_pattern(
    qdef: Q.QualifierDef,
    clause,
    expr: ir.Expr,
    ctx: TypingContext,
) -> Optional[MatchBinding]:
    """Match one clause's pattern against ``expr``.

    Returns the variable bindings on success, or None.  Casts inserted
    by the programmer are transparent to matching when they do not
    change the expression's base shape (the paper ignores the
    ``(int*)`` cast on malloc results the same way).
    """
    env = _ClauseEnv.for_clause(qdef, clause)
    pattern = clause.pattern

    if isinstance(pattern, Q.PVar):
        decl = env.decl(pattern.name)
        if _classify_ok(decl, expr, ctx):
            return {pattern.name: expr}
        return None

    if isinstance(pattern, Q.PNull):
        if isinstance(expr, ir.NullConst):
            return {}
        if isinstance(expr, ir.IntConst) and expr.value == 0:
            return {}
        if isinstance(expr, ir.CastE):
            return match_expr_pattern(qdef, clause, expr.operand, ctx)
        return None

    if isinstance(pattern, Q.PNew):
        # `new` matches allocation *instructions*, not expressions.
        return None

    if isinstance(pattern, Q.PDeref):
        target = expr
        if isinstance(target, ir.Lval) and isinstance(target.lvalue.host, ir.MemHost):
            addr = target.lvalue.host.addr
            decl = env.decl(pattern.name)
            if _classify_ok(decl, addr, ctx):
                return {pattern.name: addr}
        return None

    if isinstance(pattern, Q.PAddrOf):
        if isinstance(expr, ir.AddrOf):
            decl = env.decl(pattern.name)
            if _classify_ok(decl, expr.lvalue, ctx):
                return {pattern.name: expr.lvalue}
        return None

    if isinstance(pattern, Q.PUnop):
        if isinstance(expr, ir.UnOp) and expr.op == pattern.op:
            decl = env.decl(pattern.name)
            if _classify_ok(decl, expr.operand, ctx):
                return {pattern.name: expr.operand}
        return None

    if isinstance(pattern, Q.PBinop):
        if isinstance(expr, ir.BinOp) and _ops_equal(pattern.op, expr.op):
            left_decl = env.decl(pattern.left)
            right_decl = env.decl(pattern.right)
            if _classify_ok(left_decl, expr.left, ctx) and _classify_ok(
                right_decl, expr.right, ctx
            ):
                return {pattern.left: expr.left, pattern.right: expr.right}
        return None

    raise TypeError(f"unknown pattern {pattern!r}")


def match_assign_pattern(
    qdef: Q.QualifierDef,
    clause,
    instr: "ir.Instruction",
    ctx: TypingContext,
) -> Optional[MatchBinding]:
    """Match an assign clause against the right-hand side of an
    assignment instruction (Set) or against an allocation call."""
    if isinstance(clause.pattern, Q.PNew):
        if ir.is_allocation(instr):
            return {}
        return None
    if isinstance(instr, ir.Set):
        return match_expr_pattern(qdef, clause, instr.expr, ctx)
    return None
