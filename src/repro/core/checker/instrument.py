"""Run-time check instrumentation (paper section 2.1.3).

For every cast to a value-qualified type, the extensible typechecker
inserts a run-time check that the cast expression satisfies the
qualifier's invariant; a fatal error is signaled when it fails.  Here
the instrumentation is materialized as explicit ``__check_<qual>``
calls inserted before the instruction containing the cast, so the
printed program shows exactly what would run.  (The interpreter in
:mod:`repro.semantics.csem` enforces the same checks natively.)

Casts involving *reference* qualifiers remain unchecked (section 2.2.3).
"""

from __future__ import annotations

import copy
from typing import List

from repro.cil import ir
from repro.core.qualifiers.ast import QualifierSet


def check_function_name(qualifier: str) -> str:
    return f"__check_{qualifier}"


def instrument_program(program: ir.Program, quals: QualifierSet) -> ir.Program:
    """Return a copy of ``program`` with run-time checks inserted for
    every cast to a value-qualified type."""
    value_names = {d.name for d in quals.value_qualifiers()}
    out = copy.deepcopy(program)
    for func in out.functions:
        func.body = _instrument_stmts(func.body, value_names)
    return out


def _instrument_stmts(stmts: List[ir.Stmt], value_names: set) -> List[ir.Stmt]:
    out: List[ir.Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, ir.Instr):
            new_instrs: List[ir.Instruction] = []
            for instr in stmt.instrs:
                pre, post = _checks_for_instruction(instr, value_names)
                new_instrs.extend(pre)
                new_instrs.append(instr)
                new_instrs.extend(post)
            out.append(ir.Instr(new_instrs))
        elif isinstance(stmt, ir.If):
            out.extend(_checks_in_expr_stmt(stmt.cond, stmt.loc, value_names))
            stmt.then = _instrument_stmts(stmt.then, value_names)
            stmt.otherwise = _instrument_stmts(stmt.otherwise, value_names)
            out.append(stmt)
        elif isinstance(stmt, ir.While):
            new_cond: List[ir.Instruction] = []
            for instr in stmt.cond_instrs:
                pre, post = _checks_for_instruction(instr, value_names)
                new_cond.extend(pre)
                new_cond.append(instr)
                new_cond.extend(post)
            new_cond.extend(
                c.instrs[0]
                for c in _checks_in_expr_stmt(stmt.cond, stmt.loc, value_names)
            )
            stmt.cond_instrs = new_cond
            stmt.body = _instrument_stmts(stmt.body, value_names)
            out.append(stmt)
        elif isinstance(stmt, ir.Return):
            if stmt.expr is not None:
                out.extend(_checks_in_expr_stmt(stmt.expr, stmt.loc, value_names))
            out.append(stmt)
        else:
            out.append(stmt)
    return out


def _checks_for_instruction(instr: ir.Instruction, value_names: set):
    """Checks to run before and after one instruction.

    Casts inside argument/RHS expressions are checked *before* the
    instruction; a cast applied to a call's result (``p = (T q)f(...)``)
    is checked *after* the call, on the result l-value.
    """
    pre: List[ir.Instruction] = []
    post: List[ir.Instruction] = []
    exprs: List[ir.Expr] = []
    if isinstance(instr, ir.Set):
        exprs.append(instr.expr)
        exprs.extend(ir._lvalue_exprs(instr.lvalue))
    elif isinstance(instr, ir.Call):
        exprs.extend(instr.args)
        if instr.result_cast is not None and instr.result is not None:
            for q in sorted(instr.result_cast.quals & value_names):
                post.append(
                    ir.Call(
                        None,
                        check_function_name(q),
                        [ir.Lval(instr.result)],
                        instr.loc,
                    )
                )
    for expr in exprs:
        pre.extend(_checks_in_expr(expr, instr.loc, value_names))
    return pre, post


def _checks_in_expr(expr: ir.Expr, loc, value_names: set) -> List[ir.Call]:
    """A check call for every cast-to-qualified-type inside ``expr``."""
    checks: List[ir.Call] = []
    for node in ir.subexprs(expr):
        if isinstance(node, ir.CastE):
            for q in sorted(node.to_type.quals & value_names):
                checks.append(
                    ir.Call(None, check_function_name(q), [node.operand], loc)
                )
    return checks


def _checks_in_expr_stmt(expr: ir.Expr, loc, value_names: set) -> List[ir.Instr]:
    checks = _checks_in_expr(expr, loc, value_names)
    return [ir.Instr([c]) for c in checks]
