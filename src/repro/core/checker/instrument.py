"""Run-time check instrumentation (paper section 2.1.3).

For every cast to a value-qualified type, the extensible typechecker
inserts a run-time check that the cast expression satisfies the
qualifier's invariant; a fatal error is signaled when it fails.  Here
the instrumentation is materialized as explicit ``__check_<qual>``
calls inserted before the instruction containing the cast, so the
printed program shows exactly what would run.  (The interpreter in
:mod:`repro.semantics.csem` enforces the same checks natively.)

Check *placement* is driven by the shared dataflow solver: the guard
fixpoint of :func:`repro.core.checker.flow.solve_guard_facts` is
computed per function, and with ``flow_sensitive=True`` a check whose
operand is already covered by a dominating guard fact (e.g.
``if (p != NULL) { ... (int nonnull*)p ... }``) is elided — the guard
already performed the test the check would repeat.

Casts involving *reference* qualifiers remain unchecked (section 2.2.3).
"""

from __future__ import annotations

import copy
from typing import FrozenSet, List

from repro.cil import ir
from repro.cil.cfg import build_cfg
from repro.core.qualifiers.ast import QualifierSet


def check_function_name(qualifier: str) -> str:
    return f"__check_{qualifier}"


def instrument_program(
    program: ir.Program,
    quals: QualifierSet,
    flow_sensitive: bool = False,
) -> ir.Program:
    """Return a copy of ``program`` with run-time checks inserted for
    every cast to a value-qualified type.

    With ``flow_sensitive=True``, checks dominated by an established
    guard fact are elided; the default inserts every check, exactly as
    the paper's instrumentation does."""
    from repro.core.checker.flow import GuardAnalysis, solve_guard_facts

    value_names = {d.name for d in quals.value_qualifiers()}
    guards = GuardAnalysis(quals if flow_sensitive else QualifierSet([]))
    out = copy.deepcopy(program)
    for func in out.functions:
        addr_taken = (
            GuardAnalysis.address_taken(func)
            if flow_sensitive
            else frozenset()
        )
        # The CFG is built over the same instruction objects the
        # statement tree holds, so fact lookup by object identity works
        # during the structured splice below.
        solution = solve_guard_facts(build_cfg(func), guards, addr_taken)
        func.body = _instrument_stmts(func.body, value_names, solution)
    return out


def _instrument_stmts(
    stmts: List[ir.Stmt], value_names: set, solution
) -> List[ir.Stmt]:
    out: List[ir.Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, ir.Instr):
            new_instrs: List[ir.Instruction] = []
            for instr in stmt.instrs:
                facts = solution.point.get(id(instr), frozenset())
                pre, post = _checks_for_instruction(instr, value_names, facts)
                new_instrs.extend(pre)
                new_instrs.append(instr)
                new_instrs.extend(post)
            out.append(ir.Instr(new_instrs, stmt.loc))
        elif isinstance(stmt, ir.If):
            facts = solution.point.get(id(stmt), frozenset())
            out.extend(
                _checks_in_expr_stmt(stmt.cond, stmt.loc, value_names, facts)
            )
            stmt.then = _instrument_stmts(stmt.then, value_names, solution)
            stmt.otherwise = _instrument_stmts(
                stmt.otherwise, value_names, solution
            )
            out.append(stmt)
        elif isinstance(stmt, ir.While):
            new_cond: List[ir.Instruction] = []
            for instr in stmt.cond_instrs:
                facts = solution.point.get(id(instr), frozenset())
                pre, post = _checks_for_instruction(instr, value_names, facts)
                new_cond.extend(pre)
                new_cond.append(instr)
                new_cond.extend(post)
            facts = solution.point.get(id(stmt), frozenset())
            new_cond.extend(
                c.instrs[0]
                for c in _checks_in_expr_stmt(
                    stmt.cond, stmt.loc, value_names, facts
                )
            )
            stmt.cond_instrs = new_cond
            stmt.body = _instrument_stmts(stmt.body, value_names, solution)
            out.append(stmt)
        elif isinstance(stmt, ir.Return):
            if stmt.expr is not None:
                facts = solution.point.get(id(stmt), frozenset())
                out.extend(
                    _checks_in_expr_stmt(
                        stmt.expr, stmt.loc, value_names, facts
                    )
                )
            out.append(stmt)
        else:
            out.append(stmt)
    return out


def _checks_for_instruction(
    instr: ir.Instruction, value_names: set, facts: FrozenSet
):
    """Checks to run before and after one instruction.

    Casts inside argument/RHS expressions are checked *before* the
    instruction; a cast applied to a call's result (``p = (T q)f(...)``)
    is checked *after* the call, on the result l-value.
    """
    pre: List[ir.Instruction] = []
    post: List[ir.Instruction] = []
    exprs: List[ir.Expr] = []
    if isinstance(instr, ir.Set):
        # Pinned evaluation order (docs/architecture.md): the
        # interpreter resolves the destination l-value *before*
        # evaluating the right-hand side, so checks for casts inside
        # the l-value must run first.
        exprs.extend(ir._lvalue_exprs(instr.lvalue))
        exprs.append(instr.expr)
    elif isinstance(instr, ir.Call):
        exprs.extend(instr.args)
        if instr.result_cast is not None and instr.result is not None:
            for q in sorted(instr.result_cast.quals & value_names):
                post.append(
                    ir.Call(
                        None,
                        check_function_name(q),
                        [ir.Lval(instr.result)],
                        instr.loc,
                    )
                )
    for expr in exprs:
        pre.extend(_checks_in_expr(expr, instr.loc, value_names, facts))
    return pre, post


def _dominated(node: ir.CastE, qual: str, facts: FrozenSet) -> bool:
    """Is the cast's operand already covered by a guard fact here?  If
    so the run-time check would re-test what the guard just tested."""
    return (
        isinstance(node.operand, ir.Lval)
        and (node.operand.lvalue, qual) in facts
    )


def _checks_in_expr(
    expr: ir.Expr, loc, value_names: set, facts: FrozenSet = frozenset()
) -> List[ir.Call]:
    """A check call for every cast-to-qualified-type inside ``expr``
    that is not dominated by an established guard fact.

    Checks are emitted in *evaluation* order (inner casts before outer,
    left operands before right) so the first failing check names the
    same qualifier the interpreter's native cast check would."""
    checks: List[ir.Call] = []
    for node in ir.subexprs_postorder(expr):
        if isinstance(node, ir.CastE):
            for q in sorted(node.to_type.quals & value_names):
                if _dominated(node, q, facts):
                    continue
                checks.append(
                    ir.Call(None, check_function_name(q), [node.operand], loc)
                )
    return checks


def _checks_in_expr_stmt(
    expr: ir.Expr, loc, value_names: set, facts: FrozenSet = frozenset()
) -> List[ir.Instr]:
    checks = _checks_in_expr(expr, loc, value_names, facts)
    return [ir.Instr([c], loc) for c in checks]
