"""The extensible typechecker (paper section 3).

Takes a CIL-style program and a :class:`QualifierSet` and performs
qualifier checking: user-defined ``case`` rules decide when expressions
may be given qualified types; ``restrict`` rules tighten base-type
checks; ``assign``/``disallow``/``ondecl`` rules govern reference-
qualified l-values.  Casts to value-qualified types are recorded so the
program can be instrumented with run-time checks (section 2.1.3).
"""

from repro.core.checker.diagnostics import Diagnostic, Report
from repro.core.checker.patterns import MatchBinding, match_expr_pattern
from repro.core.checker.typecheck import QualifierChecker, check_program
from repro.core.checker.instrument import instrument_program

__all__ = [
    "Diagnostic",
    "Report",
    "MatchBinding",
    "match_expr_pattern",
    "QualifierChecker",
    "check_program",
    "instrument_program",
]
