"""The paper's primary contribution: the qualifier-definition language,
the extensible typechecker, and the automated soundness checker."""
