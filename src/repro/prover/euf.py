"""Congruence closure: equality with uninterpreted functions.

Classic union-find + signature-table algorithm (Nelson & Oppen 1980 —
the same lineage as Simplify's E-graph).  Terms are the frozen
dataclasses from :mod:`repro.prover.terms`; constants are nullary
applications; integer literals are distinct constants that are never
equal to each other.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.prover.terms import TApp, TInt, Term


class EufConflict(Exception):
    """Raised when an asserted disequality is violated."""


class CongruenceClosure:
    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}
        self._rank: Dict[Term, int] = {}
        # For each representative, the applications that have an
        # argument in its class (for congruence re-checking on merge).
        self._uses: Dict[Term, List[TApp]] = {}
        # Signature table: (fname, arg reps) -> a representative app.
        self._sigs: Dict[Tuple, TApp] = {}
        # Asserted disequalities, as pairs of terms, plus a watch index
        # (representative -> disequality indices) so a merge re-checks
        # only the disequalities touching the merged classes instead of
        # scanning them all.
        self._diseqs: List[Tuple[Term, Term]] = []
        self._diseq_watch: Dict[Term, List[int]] = {}

    # ------------------------------------------------------------ union-find

    def add_term(self, t: Term) -> None:
        if t in self._parent:
            return
        self._parent[t] = t
        self._rank[t] = 0
        self._uses[t] = []
        if isinstance(t, TApp) and t.args:
            for a in t.args:
                self.add_term(a)
                self._uses[self.find(a)].append(t)
            self._lookup_or_install(t)

    def find(self, t: Term) -> Term:
        parent = self._parent
        if t not in parent:
            self.add_term(t)
        root = t
        while parent[root] != root:
            root = parent[root]
        while parent[t] != root:  # path compression
            parent[t], t = root, parent[t]
        return root

    def _signature(self, t: TApp) -> Tuple:
        return (t.fname, tuple(self.find(a) for a in t.args))

    def _lookup_or_install(self, t: TApp) -> None:
        sig = self._signature(t)
        existing = self._sigs.get(sig)
        if existing is None:
            self._sigs[sig] = t
        elif self.find(existing) != self.find(t):
            self._merge(existing, t)

    # ------------------------------------------------------------- assertion

    def assert_eq(self, a: Term, b: Term) -> None:
        self.add_term(a)
        self.add_term(b)
        self._merge(a, b)

    def assert_neq(self, a: Term, b: Term) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            raise EufConflict(f"disequality violated: {a} != {b}")
        index = len(self._diseqs)
        self._diseqs.append((a, b))
        self._diseq_watch.setdefault(ra, []).append(index)
        self._diseq_watch.setdefault(rb, []).append(index)

    def _merge(self, a: Term, b: Term) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        obs.incr("prover.euf_merges")
        if isinstance(ra, TInt) and isinstance(rb, TInt) and ra.value != rb.value:
            raise EufConflict(f"distinct integers merged: {ra} = {rb}")
        # Union by rank, but keep integer literals as representatives so
        # numeric facts stay visible.
        if isinstance(rb, TInt):
            ra, rb = rb, ra
        elif not isinstance(ra, TInt) and self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        # Only disequalities watching the absorbed class can newly fire.
        watching = self._diseq_watch.pop(rb, None)
        if watching:
            for index in watching:
                a, b = self._diseqs[index]
                if self.find(a) == self.find(b):
                    raise EufConflict(f"disequality violated: {a} != {b}")
            self._diseq_watch.setdefault(ra, []).extend(watching)
        # Re-check congruences of applications using the merged class.
        pending = self._uses[rb]
        self._uses.setdefault(ra, []).extend(pending)
        self._uses[rb] = []
        for app in list(pending):
            self._lookup_or_install(app)

    # --------------------------------------------------------------- queries

    def are_equal(self, a: Term, b: Term) -> bool:
        return self.find(a) == self.find(b)

    def classes(self) -> Dict[Term, Set[Term]]:
        """Representative -> members, for equality propagation."""
        out: Dict[Term, Set[Term]] = {}
        for t in list(self._parent):
            out.setdefault(self.find(t), set()).add(t)
        return out

    @property
    def terms(self) -> List[Term]:
        return list(self._parent)
