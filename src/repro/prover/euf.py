"""Congruence closure: equality with uninterpreted functions.

Classic union-find + signature-table algorithm (Nelson & Oppen 1980 —
the same lineage as Simplify's E-graph).  Terms are the frozen
dataclasses from :mod:`repro.prover.terms`; constants are nullary
applications; integer literals are distinct constants that are never
equal to each other.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.prover.terms import TApp, TInt, Term


class EufConflict(Exception):
    """Raised when an asserted disequality is violated."""


class CongruenceClosure:
    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}
        self._rank: Dict[Term, int] = {}
        # For each representative, the applications that have an
        # argument in its class (for congruence re-checking on merge).
        self._uses: Dict[Term, List[TApp]] = {}
        # Signature table: (fname, arg reps) -> a representative app.
        self._sigs: Dict[Tuple, TApp] = {}
        # Asserted disequalities, as pairs of terms.
        self._diseqs: List[Tuple[Term, Term]] = []

    # ------------------------------------------------------------ union-find

    def add_term(self, t: Term) -> None:
        if t in self._parent:
            return
        self._parent[t] = t
        self._rank[t] = 0
        self._uses[t] = []
        if isinstance(t, TApp) and t.args:
            for a in t.args:
                self.add_term(a)
                self._uses[self.find(a)].append(t)
            self._lookup_or_install(t)

    def find(self, t: Term) -> Term:
        self.add_term(t)
        root = t
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[t] != root:  # path compression
            self._parent[t], t = root, self._parent[t]
        return root

    def _signature(self, t: TApp) -> Tuple:
        return (t.fname, tuple(self.find(a) for a in t.args))

    def _lookup_or_install(self, t: TApp) -> None:
        sig = self._signature(t)
        existing = self._sigs.get(sig)
        if existing is None:
            self._sigs[sig] = t
        elif self.find(existing) != self.find(t):
            self._merge(existing, t)

    # ------------------------------------------------------------- assertion

    def assert_eq(self, a: Term, b: Term) -> None:
        self.add_term(a)
        self.add_term(b)
        self._merge(a, b)
        self._check_diseqs()

    def assert_neq(self, a: Term, b: Term) -> None:
        self.add_term(a)
        self.add_term(b)
        self._diseqs.append((a, b))
        self._check_diseqs()

    def _merge(self, a: Term, b: Term) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        obs.incr("prover.euf_merges")
        if isinstance(ra, TInt) and isinstance(rb, TInt) and ra.value != rb.value:
            raise EufConflict(f"distinct integers merged: {ra} = {rb}")
        # Union by rank, but keep integer literals as representatives so
        # numeric facts stay visible.
        if isinstance(rb, TInt):
            ra, rb = rb, ra
        elif not isinstance(ra, TInt) and self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        # Re-check congruences of applications using the merged class.
        pending = self._uses[rb]
        self._uses.setdefault(ra, []).extend(pending)
        self._uses[rb] = []
        for app in list(pending):
            self._lookup_or_install(app)

    def _check_diseqs(self) -> None:
        for a, b in self._diseqs:
            if self.find(a) == self.find(b):
                raise EufConflict(f"disequality violated: {a} != {b}")

    # --------------------------------------------------------------- queries

    def are_equal(self, a: Term, b: Term) -> bool:
        return self.find(a) == self.find(b)

    def classes(self) -> Dict[Term, Set[Term]]:
        """Representative -> members, for equality propagation."""
        out: Dict[Term, Set[Term]] = {}
        for t in list(self._parent):
            out.setdefault(self.find(t), set()).add(t)
        return out

    @property
    def terms(self) -> List[Term]:
        return list(self._parent)
