"""Congruence closure: equality with uninterpreted functions.

Classic union-find + signature-table algorithm (Nelson & Oppen 1980 —
the same lineage as Simplify's E-graph).  Terms are the frozen
dataclasses from :mod:`repro.prover.terms`; constants are nullary
applications; integer literals are distinct constants that are never
equal to each other.

Two optional capabilities, both off by default so the cold path stays
exactly the classic algorithm:

* **Explanations** (``explain=True``): alongside union-find the engine
  maintains a *proof forest* (Nieuwenhuis & Oliveras 2005) — a second
  parent pointer per term whose edges are tagged with the reason the
  two endpoints were merged: either an input assertion (a frozenset of
  caller-supplied tags) or a congruence step between two applications.
  :meth:`explain` walks the two paths to their nearest common ancestor,
  recursing through congruence edges into argument pairs, and returns
  the union of input tags — the exact input literals responsible for an
  equality, with no re-closure and no search.

* **Push/pop** (implied by ``explain=True``): every mutation is
  journaled on a trail; :meth:`push` marks the trail and :meth:`pop`
  undoes back to the mark, so a caller can assert and retract literals
  along a SAT trail instead of rebuilding the closure.  Path
  compression is disabled in this mode (compressions are writes that
  would bloat the trail; union-by-rank alone keeps finds logarithmic).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro import obs
from repro.prover.terms import TApp, TInt, Term

#: An explanation tag set: opaque to this module, unioned along proof
#: paths.  The Nelson–Oppen layer uses frozensets of input literals.
Tags = FrozenSet

_NO_TAGS: Tags = frozenset()


class EufConflict(Exception):
    """Raised when an asserted disequality is violated.

    In explain mode :attr:`core` carries the union of input tags
    responsible for the conflict (``None`` when the closure was built
    without explanations)."""

    def __init__(self, message: str, core: Optional[Tags] = None):
        super().__init__(message)
        self.core = core


class CongruenceClosure:
    def __init__(self, explain: bool = False) -> None:
        self._parent: Dict[Term, Term] = {}
        self._rank: Dict[Term, int] = {}
        # For each representative, the applications that have an
        # argument in its class (for congruence re-checking on merge).
        self._uses: Dict[Term, List[TApp]] = {}
        # Signature table: (fname, arg reps) -> a representative app.
        self._sigs: Dict[Tuple, TApp] = {}
        # Asserted disequalities, as pairs of terms, plus a watch index
        # (representative -> disequality indices) so a merge re-checks
        # only the disequalities touching the merged classes instead of
        # scanning them all.
        self._diseqs: List[Tuple[Term, Term]] = []
        self._diseq_watch: Dict[Term, List[int]] = {}
        self.explains = explain
        if explain:
            # Proof forest: a second, never-compressed parent pointer
            # with the merge reason on each edge.  Reasons are either
            # ("lit", tags) for an input assertion or ("cong", a, b)
            # for a congruence between applications a and b.
            self._proof_parent: Dict[Term, Term] = {}
            self._proof_reason: Dict[Term, Tuple] = {}
            self._diseq_tags: List[Tags] = []
            self._trail: List[Tuple] = []
            self._marks: List[int] = []

    # ------------------------------------------------------------ union-find

    def add_term(self, t: Term) -> None:
        if t in self._parent:
            return
        self._parent[t] = t
        self._rank[t] = 0
        self._uses[t] = []
        if self.explains:
            self._trail.append(("term", t))
        if isinstance(t, TApp) and t.args:
            for a in t.args:
                self.add_term(a)
                rep = self.find(a)
                self._uses[rep].append(t)
                if self.explains:
                    self._trail.append(("use", rep))
            self._lookup_or_install(t)

    def find(self, t: Term) -> Term:
        parent = self._parent
        if t not in parent:
            self.add_term(t)
        root = t
        while parent[root] != root:
            root = parent[root]
        if not self.explains:  # path compression (journal-free mode only)
            while parent[t] != root:
                parent[t], t = root, parent[t]
        return root

    def _signature(self, t: TApp) -> Tuple:
        return (t.fname, tuple(self.find(a) for a in t.args))

    def _lookup_or_install(self, t: TApp) -> None:
        sig = self._signature(t)
        existing = self._sigs.get(sig)
        if existing is None:
            self._sigs[sig] = t
            if self.explains:
                self._trail.append(("sig", sig))
        elif self.find(existing) != self.find(t):
            self._merge(existing, t, ("cong", existing, t))

    # -------------------------------------------------------------- push/pop

    def push(self) -> None:
        """Mark the trail; a later :meth:`pop` undoes everything since."""
        if not self.explains:
            raise RuntimeError("push/pop requires explain mode")
        self._marks.append(len(self._trail))

    def pop(self) -> None:
        """Undo every mutation since the matching :meth:`push`."""
        self.pop_to(self._marks.pop())

    @property
    def mark(self) -> int:
        """Current trail position (for :meth:`pop_to`)."""
        if not self.explains:
            raise RuntimeError("push/pop requires explain mode")
        return len(self._trail)

    def pop_to(self, mark: int) -> None:
        """Undo the trail back to an explicit mark (finer-grained than
        the push/pop stack; used by the literal-frame layer above)."""
        trail = self._trail
        while len(trail) > mark:
            entry = trail.pop()
            kind = entry[0]
            if kind == "parent":
                self._parent[entry[1]] = entry[2]
            elif kind == "rank":
                self._rank[entry[1]] = entry[2]
            elif kind == "uses":
                # _merge moved entry[4] (the absorbed rep's list, by
                # reference) onto entry[1]'s list; undo both moves.
                del self._uses[entry[1]][entry[2] :]
                self._uses[entry[3]] = entry[4]
            elif kind == "use":
                self._uses[entry[1]].pop()
            elif kind == "proof":
                node = entry[1]
                if entry[2] is None:
                    del self._proof_parent[node]
                    del self._proof_reason[node]
                else:
                    self._proof_parent[node] = entry[2]
                    self._proof_reason[node] = entry[3]
            elif kind == "sig":
                del self._sigs[entry[1]]
            elif kind == "diseq":
                index = len(self._diseqs) - 1
                self._diseqs.pop()
                self._diseq_tags.pop()
                for rep in (entry[1], entry[2]):
                    watchers = self._diseq_watch.get(rep)
                    if watchers and watchers[-1] == index:
                        watchers.pop()
            elif kind == "watch":
                # _merge moved the absorbed rep's watcher list onto the
                # surviving rep's; restore both.
                del self._diseq_watch[entry[1]][entry[2] :]
                self._diseq_watch[entry[3]] = entry[4]
            elif kind == "term":
                t = entry[1]
                del self._parent[t]
                del self._rank[t]
                del self._uses[t]
            else:  # pragma: no cover - exhaustive
                raise AssertionError(f"unknown trail entry {kind!r}")

    # ------------------------------------------------------------- assertion

    def assert_eq(self, a: Term, b: Term, tags: Optional[Tags] = None) -> None:
        self.add_term(a)
        self.add_term(b)
        self._merge(a, b, ("lit", tags if tags is not None else _NO_TAGS))

    def assert_neq(self, a: Term, b: Term, tags: Optional[Tags] = None) -> None:
        tags = tags if tags is not None else _NO_TAGS
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            core = self.explain(a, b) | tags if self.explains else None
            raise EufConflict(f"disequality violated: {a} != {b}", core)
        index = len(self._diseqs)
        self._diseqs.append((a, b))
        self._diseq_watch.setdefault(ra, []).append(index)
        self._diseq_watch.setdefault(rb, []).append(index)
        if self.explains:
            self._diseq_tags.append(tags)
            self._trail.append(("diseq", ra, rb))

    def _merge(self, a: Term, b: Term, reason: Tuple) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        obs.incr("prover.euf_merges")
        explains = self.explains
        if explains:
            # Proof forest first, so a conflict raised below can already
            # explain why the two classes touched (the trail undoes the
            # edge if the caller rewinds).
            self._proof_link(a, b, reason)
        if isinstance(ra, TInt) and isinstance(rb, TInt) and ra.value != rb.value:
            core = self.explain(ra, rb) if explains else None
            raise EufConflict(f"distinct integers merged: {ra} = {rb}", core)
        # Union by rank, but keep integer literals as representatives so
        # numeric facts stay visible.
        if isinstance(rb, TInt):
            ra, rb = rb, ra
        elif not isinstance(ra, TInt) and self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        if explains:
            self._trail.append(("parent", rb, self._parent[rb]))
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            if explains:
                self._trail.append(("rank", ra, self._rank[ra]))
            self._rank[ra] += 1
        # Only disequalities watching the absorbed class can newly fire.
        watching = self._diseq_watch.pop(rb, None)
        if watching:
            target = self._diseq_watch.setdefault(ra, [])
            if explains:
                self._trail.append(("watch", ra, len(target), rb, watching))
            target.extend(watching)
            for index in watching:
                da, db = self._diseqs[index]
                if self.find(da) == self.find(db):
                    core = None
                    if explains:
                        core = self.explain(da, db) | self._diseq_tags[index]
                    raise EufConflict(
                        f"disequality violated: {da} != {db}", core
                    )
        # Re-check congruences of applications using the merged class.
        pending = self._uses[rb]
        target_uses = self._uses.setdefault(ra, [])
        if explains:
            self._trail.append(("uses", ra, len(target_uses), rb, pending))
        target_uses.extend(pending)
        self._uses[rb] = []
        for app in list(pending):
            self._lookup_or_install(app)

    # ---------------------------------------------------------- proof forest

    def _proof_link(self, a: Term, b: Term, reason: Tuple) -> None:
        """Add the proof edge ``a —reason— b`` by reversing the path
        from ``a`` to its proof root, then pointing ``a`` at ``b``."""
        parent = self._proof_parent
        reasons = self._proof_reason
        trail = self._trail
        node, prev, prev_reason = a, b, reason
        while True:
            old_parent = parent.get(node)
            old_reason = reasons.get(node)
            trail.append(("proof", node, old_parent, old_reason))
            parent[node] = prev
            reasons[node] = prev_reason
            if old_parent is None:
                return
            node, prev, prev_reason = old_parent, node, old_reason

    def explain(self, a: Term, b: Term) -> Tags:
        """The union of input tags responsible for ``a = b`` holding.

        Walks the proof-forest paths from both terms to their nearest
        common ancestor; congruence edges recurse into the argument
        pairs of the two applications (well-founded: those arguments
        were merged strictly earlier)."""
        if not self.explains:
            raise RuntimeError("explanations require explain mode")
        out: Set = set()
        pending: List[Tuple[Term, Term]] = [(a, b)]
        seen: Set[Tuple[Term, Term]] = set()
        parent = self._proof_parent
        reasons = self._proof_reason
        while pending:
            x, y = pending.pop()
            if x == y:
                continue
            key = (x, y) if repr(x) <= repr(y) else (y, x)
            if key in seen:
                continue
            seen.add(key)
            # Nearest common ancestor: collect x's ancestor chain, then
            # climb from y until the chain is hit.
            chain = {x}
            node = x
            while node in parent:
                node = parent[node]
                chain.add(node)
            lca = y
            while lca not in chain:
                lca = parent[lca]
            for start in (x, y):
                node = start
                while node != lca:
                    reason = reasons[node]
                    if reason[0] == "lit":
                        out.update(reason[1])
                    else:  # ("cong", app1, app2)
                        for arg_a, arg_b in zip(reason[1].args, reason[2].args):
                            pending.append((arg_a, arg_b))
                    node = parent[node]
        return frozenset(out)

    # --------------------------------------------------------------- queries

    def are_equal(self, a: Term, b: Term) -> bool:
        return self.find(a) == self.find(b)

    def classes(self) -> Dict[Term, Set[Term]]:
        """Representative -> members, for equality propagation."""
        out: Dict[Term, Set[Term]] = {}
        for t in list(self._parent):
            out.setdefault(self.find(t), set()).add(t)
        return out

    @property
    def terms(self) -> List[Term]:
        return list(self._parent)
