"""A small DPLL SAT solver.

Deliberately simple: unit propagation plus chronological backtracking,
sized for the clause sets our proof obligations produce (hundreds of
variables).  The prover drives it in a lazy-SMT loop, appending theory
conflict clauses between calls.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs

Clause = Tuple[int, ...]


def solve(clauses: List[Clause], num_vars: int) -> Optional[Dict[int, bool]]:
    """Return a satisfying assignment (var -> bool, total over the vars
    that occur), or None when unsatisfiable.

    Each call is timed into the ``prover.sat_ms`` counter when
    profiling is on (one gate check per call — the DPLL loops
    themselves are never instrumented)."""
    if not obs.enabled():
        return _solve(clauses, num_vars)
    obs.incr("prover.sat_calls")
    obs.count_max("prover.clauses_peak", len(clauses))
    with obs.timer("prover.sat_ms"):
        return _solve(clauses, num_vars)


def _solve(clauses: List[Clause], num_vars: int) -> Optional[Dict[int, bool]]:
    assignment: Dict[int, bool] = {}
    trail: List[Tuple[int, bool]] = []  # (var, was_decision)

    def value(lit: int) -> Optional[bool]:
        var = abs(lit)
        if var not in assignment:
            return None
        val = assignment[var]
        return val if lit > 0 else not val

    def assign(lit: int, decision: bool) -> None:
        assignment[abs(lit)] = lit > 0
        trail.append((abs(lit), decision))

    def propagate() -> bool:
        """Unit propagation; returns False on conflict."""
        changed = True
        while changed:
            changed = False
            for clause in clauses:
                unassigned = None
                satisfied = False
                count = 0
                for lit in clause:
                    v = value(lit)
                    if v is True:
                        satisfied = True
                        break
                    if v is None:
                        unassigned = lit
                        count += 1
                        if count > 1:
                            break
                if satisfied:
                    continue
                if count == 0:
                    return False  # conflict
                if count == 1:
                    assign(unassigned, decision=False)
                    changed = True
        return True

    def backtrack() -> Optional[int]:
        """Undo up to (and including) the last decision; return the
        decision literal to flip, or None when exhausted."""
        while trail:
            var, was_decision = trail.pop()
            val = assignment.pop(var)
            if was_decision:
                return var if not val else -var  # try the flipped value
        return None

    variables = sorted({abs(l) for c in clauses for l in c})

    if not propagate():
        return None
    while True:
        free = next((v for v in variables if v not in assignment), None)
        if free is None:
            return dict(assignment)
        assign(free, decision=True)
        while not propagate():
            flipped = backtrack()
            if flipped is None:
                return None
            assign(flipped, decision=False)
