"""The prover driver: lazy SMT with quantifier instantiation rounds.

``Prover.prove(goal)`` asserts the axioms and the negated goal, then
alternates:

* a DPLL search for a boolean model, with theory conflicts (from the
  Nelson–Oppen core) learned as clauses — until UNSAT (goal proved) or
  a theory-consistent model is found;
* an E-matching round instantiating every quantifier atom against the
  ground-term pool, plus fresh sign lemmas for any nonlinear product
  terms that appeared.

If a round adds nothing new and a model still exists, the result is
"not proven" — exactly Simplify's behaviour on invalid or too-hard
obligations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.harness.watchdog import NO_RETRY, Deadline, DeadlineExceeded, RetryPolicy
from repro.prover import combine, sat
from repro.prover.cnf import ClauseDb, QuantAtom, assert_formula, encode, nnf, skolemize
from repro.prover.quant import ground_pool, instantiate
from repro.prover.terms import (
    And,
    Eq,
    Formula,
    Implies,
    Int,
    Le,
    Lt,
    Not,
    Or,
    Pr,
    TApp,
    TInt,
    Term,
    fn,
    subterms,
)


#: Outcome taxonomy (``ProofResult.verdict``):
#: * ``PROVED`` — the negated goal is unsatisfiable: the obligation holds.
#: * ``REFUTED`` — instantiation saturated and a theory-consistent
#:   candidate countermodel remains: the rules genuinely fail to
#:   exclude a scenario (Simplify's "invalid").
#: * ``TIMEOUT`` — the wall-clock deadline fired mid-search; more time
#:   might settle it either way.
#: * ``GAVE_UP`` — a search budget (conflicts, instantiation rounds)
#:   ran out before saturation; a bigger budget may help, so this is
#:   the verdict the retry policy escalates on.
PROVED = "PROVED"
REFUTED = "REFUTED"
TIMEOUT = "TIMEOUT"
GAVE_UP = "GAVE_UP"


@dataclass
class ProofResult:
    proved: bool
    rounds: int = 0
    instances: int = 0
    conflicts: int = 0
    elapsed: float = 0.0
    reason: str = ""
    verdict: str = GAVE_UP
    attempts: int = 1
    # True when this result was replayed from the proof cache rather
    # than searched for; rounds/instances/conflicts/attempts then
    # describe the original (cold) proof, elapsed the cache lookup.
    cached: bool = False
    # For NOT PROVEN: the theory literals of the final candidate
    # countermodel (a consistent scenario the rules fail to exclude).
    countermodel: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.proved

    def __str__(self) -> str:
        status = "PROVED" if self.proved else f"NOT PROVEN [{self.verdict}]"
        retried = f", attempts={self.attempts}" if self.attempts > 1 else ""
        origin = ", cached" if self.cached else ""
        return (
            f"{status} (rounds={self.rounds}, instances={self.instances}, "
            f"theory conflicts={self.conflicts}, {self.elapsed * 1000:.1f} ms{retried}{origin})"
            + (f": {self.reason}" if self.reason else "")
        )

    def to_cache_payload(self) -> Dict:
        """The JSON-safe slice of this result worth replaying later."""
        return {
            "proved": self.proved,
            "rounds": self.rounds,
            "instances": self.instances,
            "conflicts": self.conflicts,
            "elapsed": self.elapsed,
            "reason": self.reason,
            "verdict": self.verdict,
            "attempts": self.attempts,
            "countermodel": list(self.countermodel),
        }

    @classmethod
    def from_cache_payload(cls, payload: Dict, elapsed: float = 0.0) -> "ProofResult":
        return cls(
            proved=bool(payload.get("proved")),
            rounds=int(payload.get("rounds", 0)),
            instances=int(payload.get("instances", 0)),
            conflicts=int(payload.get("conflicts", 0)),
            elapsed=elapsed,
            reason=str(payload.get("reason", "")),
            verdict=str(payload.get("verdict", GAVE_UP)),
            attempts=int(payload.get("attempts", 1)),
            cached=True,
            countermodel=[str(f) for f in payload.get("countermodel", ())],
        )


class Prover:
    """A reusable prover instance holding a set of axioms."""

    def __init__(
        self,
        max_rounds: int = 6,
        max_conflicts: int = 4000,
        time_limit: float = 60.0,
        explain: bool = True,
    ):
        self.axioms: List[Formula] = []
        self.max_rounds = max_rounds
        self.max_conflicts = max_conflicts
        self.time_limit = time_limit
        # Explained conflict cores (proof-forest EUF + incremental
        # theory state per goal); False falls back to the search-based
        # ddmin minimizer — same verdicts, slower cores (the
        # ``--no-explain`` ablation).
        self.explain = explain
        self._theory_state: Optional[combine.TheoryState] = None
        # Optional derive_triggers memo shared across prove calls; a
        # plain Prover leaves it off (None).
        self.trigger_cache = None

    def add_axiom(self, axiom: Formula) -> None:
        self.axioms.append(axiom)

    def add_axioms(self, axioms) -> None:
        self.axioms.extend(axioms)

    # ------------------------------------------------------- session hooks
    #
    # ProverSession subclasses Prover and overrides these to reuse
    # encoded axioms, canonical goal skolems, and learned theory
    # conflicts across obligations.  The defaults reproduce the
    # stand-alone prover exactly.

    def _base_db(self) -> ClauseDb:
        """Clause database with the axioms asserted."""
        db = ClauseDb()
        for ax in self.axioms:
            assert_formula(db, ax)
        return db

    def _assert(self, db: ClauseDb, f: Formula) -> None:
        """Assert a goal-side formula (extra axiom or negated goal)."""
        assert_formula(db, f)

    def _begin_goal(self) -> None:
        """Called once at the start of every uncached prove call."""
        self._theory_state = combine.TheoryState() if self.explain else None

    def _theory_check(self, theory_lits, deadline: Deadline):
        """Nelson–Oppen consistency check; returns a conflict or None."""
        return combine.check(
            theory_lits, deadline=deadline.at, state=self._theory_state
        )

    def _note_conflict(self, conflict) -> None:
        """Observe a learned theory conflict ((atom, polarity) pairs)."""

    def _seed_learned(self, db: ClauseDb) -> None:
        """Inject previously learned clauses before a SAT search."""

    def _spawn(
        self, max_rounds: int, max_conflicts: int, time_limit: float
    ) -> "Prover":
        """A prover for one retry attempt, sharing this one's axioms
        (and, in a session, its learned state)."""
        attempt = Prover(
            max_rounds=max_rounds,
            max_conflicts=max_conflicts,
            time_limit=time_limit,
            explain=self.explain,
        )
        attempt.axioms = self.axioms
        return attempt

    # ----------------------------------------------------------------- prove

    def prove(
        self,
        goal: Formula,
        extra_axioms: List[Formula] = (),
        deadline: Optional[Deadline] = None,
        cache=None,
        cache_context: str = "",
    ) -> ProofResult:
        """Attempt the goal once within ``self.time_limit`` (further
        capped by ``deadline`` when one is supplied).  The deadline is
        threaded into *every* loop — DPLL restarts, theory checks, and
        each E-matching pass inside an instantiation round — so a hard
        obligation cannot overshoot its budget by a whole round.

        ``cache`` (a :class:`repro.cache.ProofCache`, duck-typed so the
        prover stays dependency-free) is consulted before any search
        work and updated afterwards with settled verdicts;
        ``cache_context`` is folded into the cache's environment key
        (the soundness checker passes the qualifier definition text).
        """
        start = time.perf_counter()
        cache_key = None
        if cache is not None:
            cache_key = cache.key(
                goal, self.axioms, extra_axioms, context=cache_context
            )
            payload = cache.get(cache_key)
            if payload is not None:
                return ProofResult.from_cache_payload(
                    payload, elapsed=time.perf_counter() - start
                )
        with obs.span("prover.prove"):
            result = self._prove_uncached(goal, extra_axioms, deadline, start)
        if obs.enabled():
            obs.incr("prover.calls")
            obs.add_time("prover.proofs_ms", result.elapsed * 1000.0)
            obs.incr(f"prover.verdicts.{result.verdict}")
            obs.incr("prover.conflicts", result.conflicts)
            obs.incr("prover.instances", result.instances)
        return _record(cache, cache_key, result)

    def _prove_uncached(
        self,
        goal: Formula,
        extra_axioms: List[Formula],
        deadline: Optional[Deadline],
        start: float,
    ) -> ProofResult:
        deadline = (deadline or Deadline(None)).tightened(self.time_limit)
        self._begin_goal()
        db = self._base_db()
        for ax in extra_axioms:
            self._assert(db, ax)
        self._assert(db, Not(goal))

        instantiated: Dict[int, Set[Tuple[Term, ...]]] = {}
        lemma_products = {
            "done": set(),
            "products": [],
            "moduli": set(),
            "pairs": set(),
        }
        result = ProofResult(proved=False)

        last_model = None
        try:
            for round_no in range(self.max_rounds + 1):
                result.rounds = round_no
                self._add_product_lemmas(db, lemma_products)
                self._seed_learned(db)
                model = self._smt_search(db, result, deadline)
                if model is None:
                    result.proved = True
                    result.verdict = PROVED
                    result.elapsed = time.perf_counter() - start
                    return result
                if model == "budget":
                    result.reason = "search budget exhausted"
                    result.verdict = GAVE_UP
                    break
                if model == "timeout":
                    result.reason = "time limit"
                    result.verdict = TIMEOUT
                    break
                last_model = model
                # Theory-consistent boolean model: instantiate and retry.
                obs.incr("prover.ematch_rounds")
                with obs.timer("prover.quant_ms"):
                    added = self._instantiation_round(
                        db, instantiated, result, deadline
                    )
                if not added:
                    result.reason = "no further instances (candidate countermodel)"
                    result.verdict = REFUTED
                    break
                deadline.check()
            else:
                result.reason = "instantiation round limit"
                result.verdict = GAVE_UP
        except DeadlineExceeded:
            result.reason = "time limit"
            result.verdict = TIMEOUT
        if last_model is not None:
            result.countermodel = _describe_model(db, last_model)
        result.elapsed = time.perf_counter() - start
        return result

    def prove_with_retry(
        self,
        goal: Formula,
        extra_axioms: List[Formula] = (),
        retry: RetryPolicy = NO_RETRY,
        deadline: Optional[Deadline] = None,
        cache=None,
        cache_context: str = "",
    ) -> ProofResult:
        """Like :meth:`prove`, but ``GAVE_UP`` outcomes are retried with
        escalating conflict/round budgets and exponential backoff, as
        long as the governing deadline can fund another attempt.
        ``TIMEOUT`` is never retried (more wall-clock is exactly what
        the unit does not have), and ``REFUTED`` is final: saturation
        found a stable countermodel that a bigger budget cannot remove.

        The cache is consulted exactly once, before the first attempt
        (a hit costs no prover work at all), and the final settled
        verdict — whatever attempt produced it — is stored back.
        """
        cache_key = None
        if cache is not None:
            probe_start = time.perf_counter()
            cache_key = cache.key(
                goal, self.axioms, extra_axioms, context=cache_context
            )
            payload = cache.get(cache_key)
            if payload is not None:
                return ProofResult.from_cache_payload(
                    payload, elapsed=time.perf_counter() - probe_start
                )
        deadline = (deadline or Deadline(None)).tightened(self.time_limit)
        result: Optional[ProofResult] = None
        attempts = 0
        for attempt in retry.attempts(deadline):
            attempts = attempt
            scale = retry.budget_scale(attempt)
            attempt_prover = self._spawn(
                max_rounds=max(1, int(self.max_rounds * scale)),
                max_conflicts=max(1, int(self.max_conflicts * scale)),
                time_limit=deadline.remaining(),
            )
            result = attempt_prover.prove(goal, extra_axioms, deadline=deadline)
            result.attempts = attempts
            if result.verdict != GAVE_UP or deadline.expired():
                return _record(cache, cache_key, result)
        if result is None:  # deadline could not fund even one attempt
            result = ProofResult(
                proved=False, reason="time limit", verdict=TIMEOUT
            )
        result.attempts = max(attempts, result.attempts)
        return _record(cache, cache_key, result)

    # -------------------------------------------------------------- internals

    def _smt_search(self, db: ClauseDb, result: ProofResult, deadline: Deadline):
        while True:
            model = sat.solve(db.clauses, db.num_vars)
            if model is None:
                return None
            theory_lits = [
                (atom, model[var])
                for var, atom in db.theory_atoms()
                if var in model
            ]
            conflict = self._theory_check(theory_lits, deadline)
            if conflict is None:
                return model
            result.conflicts += 1
            db.learn_theory_conflict(conflict)
            self._note_conflict(conflict)
            if result.conflicts > self.max_conflicts:
                return "budget"
            if deadline.expired():
                return "timeout"

    def _instantiation_round(
        self,
        db: ClauseDb,
        instantiated: Dict[int, Set[Tuple[Term, ...]]],
        result: ProofResult,
        deadline: Deadline,
    ) -> bool:
        atoms = [a for _, a in db.theory_atoms()]
        pool = ground_pool(atoms)
        added = False
        # Snapshot: instances added this round may create new quant atoms
        # (nested foralls); they instantiate next round.  The deadline is
        # threaded into the E-matching loops themselves: a round over a
        # large pool aborts mid-match (DeadlineExceeded) rather than
        # only noticing the limit once the whole round has run.
        for var, qatom in list(db.quant_atoms()):
            deadline.check("instantiation round")
            seen = instantiated.setdefault(var, set())
            for _args, body in instantiate(
                qatom, pool, seen, deadline=deadline,
                trigger_cache=self.trigger_cache,
            ):
                lit = encode(db, body)
                db.add_clause([-var, lit])
                result.instances += 1
                added = True
        return added

    def _add_product_lemmas(self, db: ClauseDb, state: Dict) -> None:
        """Arithmetic lemmas for terms the linear solver treats as
        opaque: sign/zero lemmas for nonlinear products (Simplify had
        comparable multiplication heuristics) and Euclidean division
        lemmas for ``%``/``/`` with a positive constant divisor."""
        done: Set[Term] = state["done"]
        products: List[TApp] = []
        mods: List[TApp] = []
        for _, atom in db.theory_atoms():
            for t in _atom_terms(atom):
                for s in subterms(t):
                    if not isinstance(s, TApp) or len(s.args) != 2 or s in done:
                        continue
                    if (
                        s.fname == "*"
                        and not isinstance(s.args[0], TInt)
                        and not isinstance(s.args[1], TInt)
                    ):
                        done.add(s)
                        products.append(s)
                        state["products"].append(s)
                    elif (
                        s.fname == "%"
                        and isinstance(s.args[1], TInt)
                        and s.args[1].value > 0
                    ):
                        done.add(s)
                        mods.append(s)
                        state["moduli"].add(s.args[1])
        zero = Int(0)
        for m in mods:
            x, k = m.args
            quotient = fn("/", x, k)
            # C's truncating division satisfies x == (x/k)*k + x%k for
            # every x, with |x%k| < k and x%k carrying x's sign.
            assert_formula(db, Eq(x, fn("+", fn("*", k, quotient), m)))
            assert_formula(db, Lt(m, k))
            assert_formula(db, Lt(fn("-", zero, k), m))
            assert_formula(db, Implies(Le(zero, x), Le(zero, m)))
            assert_formula(db, Implies(Le(x, zero), Le(m, zero)))
        # Divisibility transfers through products: k | a implies
        # k | a*b (exact divisibility, valid for C's truncated %).
        # Stated for every (product, modulus) pair seen so far;
        # congruence closure connects mod(p, k) with mod(e, k) when e is
        # known equal to p.
        for p in state["products"]:
            for k in sorted(state["moduli"], key=repr):
                if (p, k) in state["pairs"]:
                    continue
                state["pairs"].add((p, k))
                for factor in p.args:
                    assert_formula(
                        db,
                        Implies(
                            Eq(fn("%", factor, k), zero),
                            Eq(fn("%", p, k), zero),
                        ),
                    )
        for p in products:
            a, b = p.args
            for lemma in (
                Implies(And(Lt(zero, a), Lt(zero, b)), Lt(zero, p)),
                Implies(And(Lt(a, zero), Lt(b, zero)), Lt(zero, p)),
                Implies(And(Lt(zero, a), Lt(b, zero)), Lt(p, zero)),
                Implies(And(Lt(a, zero), Lt(zero, b)), Lt(p, zero)),
                Implies(Eq(a, zero), Eq(p, zero)),
                Implies(Eq(b, zero), Eq(p, zero)),
                Implies(Eq(p, zero), Or(Eq(a, zero), Eq(b, zero))),
            ):
                assert_formula(db, lemma)


def _record(cache, cache_key, result: ProofResult) -> ProofResult:
    """Store a settled verdict back into the proof cache.  The cache
    itself refuses budget-dependent verdicts (TIMEOUT/GAVE_UP), so a
    slow run never poisons a later, better-funded one."""
    if cache is not None and cache_key is not None and not result.cached:
        cache.put(cache_key, result.to_cache_payload())
    return result


def _atom_terms(atom):
    if isinstance(atom, (Eq, Le, Lt)):
        return (atom.left, atom.right)
    if isinstance(atom, Pr):
        return atom.args
    return ()


def _describe_model(db: ClauseDb, model) -> List[str]:
    """Human-readable theory literals of a candidate countermodel.

    Every registered theory atom is accounted for: atoms the SAT model
    assigns appear as literals, and atoms the search never constrained
    (e.g. variables introduced only by ``extra`` axioms whose clauses
    simplified away) are still listed — tagged — so a failure artifact
    records a complete binding for every variable in play."""
    lines: List[str] = []
    unconstrained: List[str] = []
    for var, atom in sorted(db.theory_atoms(), key=lambda p: str(p[1])):
        value = model.get(var)
        if value is None:
            unconstrained.append(f"{atom} [unconstrained]")
            continue
        lines.append(str(atom) if value else f"¬({atom})")
    return lines + unconstrained


def prove_valid(
    goal: Formula,
    axioms: List[Formula] = (),
    retry: Optional[RetryPolicy] = None,
    deadline: Optional[Deadline] = None,
    cache=None,
    cache_context: str = "",
    **kwargs,
) -> ProofResult:
    """One-shot validity check: is ``goal`` entailed by ``axioms``?"""
    prover = Prover(**kwargs)
    prover.add_axioms(list(axioms))
    if retry is not None:
        return prover.prove_with_retry(
            goal, retry=retry, deadline=deadline,
            cache=cache, cache_context=cache_context,
        )
    return prover.prove(goal, deadline=deadline, cache=cache, cache_context=cache_context)
