"""First-order terms and formulas.

Terms are untyped (as in Simplify): the intended domain is the
integers, with program values, memory locations and reified syntax all
encoded as integer-valued terms.  The interpreted function symbols are
``+``, ``-`` and ``*`` plus integer literals; every other symbol is
uninterpreted and handled by congruence closure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Tuple

# ---------------------------------------------------------------------- terms


@dataclass(frozen=True)
class Term:
    pass


@dataclass(frozen=True)
class TVar(Term):
    """A variable — free variables are only meaningful under a
    quantifier or in an axiom schema; ground reasoning uses constants
    (nullary :class:`TApp`)."""

    name: str

    def __post_init__(self):
        object.__setattr__(self, "_hash", hash(("v", self.name)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class TInt(Term):
    value: int

    def __post_init__(self):
        object.__setattr__(self, "_hash", hash(("i", self.value)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class TApp(Term):
    fname: str
    args: Tuple[Term, ...] = ()

    def __post_init__(self):
        # Terms are deep trees used heavily as dict keys; caching the
        # hash turns the recursive recomputation into O(1).
        object.__setattr__(
            self, "_hash", hash(("a", self.fname, self.args))
        )

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return (
            type(other) is TApp
            and self._hash == other._hash
            and self.fname == other.fname
            and self.args == other.args
        )

    def __str__(self) -> str:
        if not self.args:
            return self.fname
        return f"{self.fname}({', '.join(str(a) for a in self.args)})"


def fn(name: str, *args: Term) -> TApp:
    """Convenience constructor for function applications/constants."""
    return TApp(name, tuple(args))


def Int(value: int) -> TInt:
    return TInt(value)


ARITH_FNS = ("+", "-", "*")


def term_vars(t: Term) -> FrozenSet[str]:
    if isinstance(t, TVar):
        return frozenset([t.name])
    if isinstance(t, TApp):
        out: FrozenSet[str] = frozenset()
        for a in t.args:
            out |= term_vars(a)
        return out
    return frozenset()


def term_subst(t: Term, subst: Dict[str, Term]) -> Term:
    if isinstance(t, TVar):
        return subst.get(t.name, t)
    if isinstance(t, TApp):
        return TApp(t.fname, tuple(term_subst(a, subst) for a in t.args))
    return t


def subterms(t: Term):
    """Yield ``t`` and every subterm (pre-order)."""
    yield t
    if isinstance(t, TApp):
        for a in t.args:
            yield from subterms(a)


# ------------------------------------------------------------------- formulas


@dataclass(frozen=True)
class Formula:
    pass


@dataclass(frozen=True)
class FTrue(Formula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FFalse(Formula):
    def __str__(self) -> str:
        return "false"


TRUE = FTrue()
FALSE = FFalse()


@dataclass(frozen=True)
class Eq(Formula):
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Le(Formula):
    """``left <= right``."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"{self.left} <= {self.right}"


@dataclass(frozen=True)
class Lt(Formula):
    """``left < right``."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"{self.left} < {self.right}"


@dataclass(frozen=True)
class Pr(Formula):
    """An uninterpreted predicate application, e.g. isHeapLoc(v)."""

    name: str
    args: Tuple[Term, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    conjuncts: Tuple[Formula, ...]

    def __init__(self, *conjuncts: Formula):
        object.__setattr__(self, "conjuncts", tuple(conjuncts))

    def __str__(self) -> str:
        return "(" + " ∧ ".join(str(c) for c in self.conjuncts) + ")"


@dataclass(frozen=True)
class Or(Formula):
    disjuncts: Tuple[Formula, ...]

    def __init__(self, *disjuncts: Formula):
        object.__setattr__(self, "disjuncts", tuple(disjuncts))

    def __str__(self) -> str:
        return "(" + " ∨ ".join(str(d) for d in self.disjuncts) + ")"


@dataclass(frozen=True)
class Implies(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ⇒ {self.right})"


@dataclass(frozen=True)
class Iff(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ⇔ {self.right})"


@dataclass(frozen=True)
class ForAll(Formula):
    """Universal quantification with optional E-matching triggers.

    Each trigger is a tuple of term patterns (a multi-pattern); at least
    one trigger must match ground terms for the axiom to instantiate.
    When no triggers are given, the instantiation engine derives them.
    """

    vars: Tuple[str, ...]
    body: Formula
    triggers: Tuple[Tuple[Term, ...], ...] = ()

    def __str__(self) -> str:
        return f"∀{','.join(self.vars)}. {self.body}"


@dataclass(frozen=True)
class Exists(Formula):
    vars: Tuple[str, ...]
    body: Formula

    def __str__(self) -> str:
        return f"∃{','.join(self.vars)}. {self.body}"


Atom = (Eq, Le, Lt, Pr)


def formula_subst(f: Formula, subst: Dict[str, Term]) -> Formula:
    if isinstance(f, (FTrue, FFalse)):
        return f
    if isinstance(f, Eq):
        return Eq(term_subst(f.left, subst), term_subst(f.right, subst))
    if isinstance(f, Le):
        return Le(term_subst(f.left, subst), term_subst(f.right, subst))
    if isinstance(f, Lt):
        return Lt(term_subst(f.left, subst), term_subst(f.right, subst))
    if isinstance(f, Pr):
        return Pr(f.name, tuple(term_subst(a, subst) for a in f.args))
    if isinstance(f, Not):
        return Not(formula_subst(f.operand, subst))
    if isinstance(f, And):
        return And(*(formula_subst(c, subst) for c in f.conjuncts))
    if isinstance(f, Or):
        return Or(*(formula_subst(d, subst) for d in f.disjuncts))
    if isinstance(f, Implies):
        return Implies(formula_subst(f.left, subst), formula_subst(f.right, subst))
    if isinstance(f, Iff):
        return Iff(formula_subst(f.left, subst), formula_subst(f.right, subst))
    if isinstance(f, ForAll):
        inner = {k: v for k, v in subst.items() if k not in f.vars}
        return ForAll(
            f.vars,
            formula_subst(f.body, inner),
            tuple(
                tuple(term_subst(p, inner) for p in trig) for trig in f.triggers
            ),
        )
    if isinstance(f, Exists):
        inner = {k: v for k, v in subst.items() if k not in f.vars}
        return Exists(f.vars, formula_subst(f.body, inner))
    raise TypeError(f"unknown formula {f!r}")


def formula_terms(f: Formula):
    """Yield every term occurring in the formula (including subterms)."""
    if isinstance(f, (Eq, Le, Lt)):
        yield from subterms(f.left)
        yield from subterms(f.right)
    elif isinstance(f, Pr):
        for a in f.args:
            yield from subterms(a)
    elif isinstance(f, Not):
        yield from formula_terms(f.operand)
    elif isinstance(f, And):
        for c in f.conjuncts:
            yield from formula_terms(c)
    elif isinstance(f, Or):
        for d in f.disjuncts:
            yield from formula_terms(d)
    elif isinstance(f, (Implies, Iff)):
        yield from formula_terms(f.left)
        yield from formula_terms(f.right)
    elif isinstance(f, (ForAll, Exists)):
        yield from formula_terms(f.body)


def free_vars(f: Formula) -> FrozenSet[str]:
    if isinstance(f, (FTrue, FFalse)):
        return frozenset()
    if isinstance(f, (Eq, Le, Lt)):
        return term_vars(f.left) | term_vars(f.right)
    if isinstance(f, Pr):
        out: FrozenSet[str] = frozenset()
        for a in f.args:
            out |= term_vars(a)
        return out
    if isinstance(f, Not):
        return free_vars(f.operand)
    if isinstance(f, And):
        out = frozenset()
        for c in f.conjuncts:
            out |= free_vars(c)
        return out
    if isinstance(f, Or):
        out = frozenset()
        for d in f.disjuncts:
            out |= free_vars(d)
        return out
    if isinstance(f, (Implies, Iff)):
        return free_vars(f.left) | free_vars(f.right)
    if isinstance(f, (ForAll, Exists)):
        return free_vars(f.body) - frozenset(f.vars)
    raise TypeError(f"unknown formula {f!r}")
