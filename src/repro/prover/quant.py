"""Trigger-based quantifier instantiation (E-matching, syntactic).

Each positive ``forall`` is reified as a :class:`QuantAtom`; this module
matches its triggers against the current ground-term pool and produces
instances, which the prover encodes as ``qatom -> instance`` clauses.
Triggers not supplied by the axiom author are derived from the body.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro import obs
from repro.harness.watchdog import Deadline
from repro.prover import terms as T
from repro.prover.cnf import QuantAtom
from repro.prover.terms import (
    ARITH_FNS,
    And,
    Eq,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Le,
    Lt,
    Not,
    Or,
    Pr,
    TApp,
    Term,
    TInt,
    TVar,
    formula_subst,
    formula_terms,
    subterms,
    term_vars,
)

#: Instantiation is bounded to keep the prover terminating; these caps
#: are generous for the paper's obligations.
MAX_INSTANCES_PER_ATOM = 2000


def derive_triggers(atom: QuantAtom) -> Tuple[Tuple[Term, ...], ...]:
    """Heuristic trigger selection when the axiom gives none.

    Candidate patterns are application subterms of the body that contain
    at least one bound variable and are not purely arithmetic.  Prefer
    single patterns that cover all bound variables; otherwise greedily
    assemble a multi-pattern.
    """
    if atom.triggers:
        return atom.triggers
    bound = frozenset(atom.vars)
    candidates: List[Term] = []
    seen: Set[Term] = set()
    for t in _pattern_terms(atom.body):
        if (
            isinstance(t, TApp)
            and t.args
            and t.fname not in ARITH_FNS
            and (term_vars(t) & bound)
            and t not in seen
        ):
            seen.add(t)
            candidates.append(t)
    # Drop candidates that are proper subterms of other candidates (the
    # larger pattern matches less often — both are kept as alternatives
    # only if needed for coverage).
    full_cover = [c for c in candidates if term_vars(c) >= bound]
    triggers: List[Tuple[Term, ...]] = [(c,) for c in full_cover]
    if not triggers and candidates:
        multi: List[Term] = []
        covered: FrozenSet[str] = frozenset()
        for c in sorted(candidates, key=lambda t: -len(term_vars(t) & bound)):
            if (term_vars(c) & bound) - covered:
                multi.append(c)
                covered |= term_vars(c) & bound
            if covered >= bound:
                break
        if covered >= bound:
            triggers = [tuple(multi)]
    return tuple(triggers)


def match_term(pattern: Term, ground: Term, subst: Dict[str, Term]) -> Optional[Dict[str, Term]]:
    """Syntactic one-way matching of ``pattern`` against ``ground``."""
    if isinstance(pattern, TVar):
        bound = subst.get(pattern.name)
        if bound is None:
            new = dict(subst)
            new[pattern.name] = ground
            return new
        return subst if bound == ground else None
    if isinstance(pattern, TInt):
        return subst if pattern == ground else None
    if isinstance(pattern, TApp):
        if (
            not isinstance(ground, TApp)
            or ground.fname != pattern.fname
            or len(ground.args) != len(pattern.args)
        ):
            return None
        current = subst
        for p_arg, g_arg in zip(pattern.args, ground.args):
            current = match_term(p_arg, g_arg, current)
            if current is None:
                return None
        return current
    raise TypeError(f"unknown pattern term {pattern!r}")


#: Deadline polling stride inside the matching loops: checking the
#: clock on every candidate would cost more than the match itself.
_DEADLINE_STRIDE = 64


def _matches_for_pattern(
    pattern: Term, pool: Iterable[Term], subst: Dict[str, Term]
) -> List[Dict[str, Term]]:
    out = []
    for ground in pool:
        m = match_term(pattern, ground, subst)
        if m is not None:
            out.append(m)
    return out


def instantiate(
    atom: QuantAtom,
    pool: List[Term],
    already: Set[Tuple[Term, ...]],
    deadline: Optional[Deadline] = None,
    trigger_cache: Optional[Dict[QuantAtom, Tuple[Tuple[Term, ...], ...]]] = None,
) -> List[Tuple[Tuple[Term, ...], Formula]]:
    """All new instances of ``atom`` over the ground-term ``pool``.

    Returns (argument tuple, instantiated body) pairs; ``already`` is
    updated with the argument tuples produced.  The matching loops are
    combinatorial in the trigger arity and pool size, so the
    ``deadline`` is polled *inside* them (every ``_DEADLINE_STRIDE``
    candidates) — a hard atom raises ``DeadlineExceeded`` mid-round
    instead of overrunning its budget by a whole round.

    ``trigger_cache`` memoizes :func:`derive_triggers` per quantifier
    atom; a prover session shares one cache across the obligations of
    an axiom environment, where the same axiom atoms recur.
    """
    if trigger_cache is None:
        triggers = derive_triggers(atom)
    else:
        triggers = trigger_cache.get(atom)
        if triggers is None:
            triggers = derive_triggers(atom)
            trigger_cache[atom] = triggers
    out: List[Tuple[Tuple[Term, ...], Formula]] = []
    bound = list(atom.vars)
    if obs.enabled():
        obs.incr("prover.ematch_atoms")
        obs.incr("prover.ematch_pool_terms", len(pool))
    ticks = 0
    for trigger in triggers:
        substs: List[Dict[str, Term]] = [{}]
        for pattern in trigger:
            next_substs: List[Dict[str, Term]] = []
            for s in substs:
                ticks += 1
                if deadline is not None and ticks % _DEADLINE_STRIDE == 0:
                    deadline.check("E-matching")
                next_substs.extend(_matches_for_pattern(pattern, pool, s))
            substs = next_substs
            if not substs:
                break
        for s in substs:
            ticks += 1
            if deadline is not None and ticks % _DEADLINE_STRIDE == 0:
                deadline.check("E-matching substitution")
            if not all(v in s for v in bound):
                continue
            args = tuple(s[v] for v in bound)
            if args in already:
                continue
            already.add(args)
            out.append((args, formula_subst(atom.body, s)))
            if len(already) > MAX_INSTANCES_PER_ATOM:
                return out
    return out


def _pattern_terms(f: Formula):
    """Terms usable as trigger patterns, including predicate
    applications reified as ``@p_<name>`` pseudo-terms so axioms over
    predicates can trigger too."""
    if isinstance(f, Pr):
        yield TApp(f"@p_{f.name}", f.args)
        for a in f.args:
            yield from subterms(a)
    elif isinstance(f, (Eq, Le, Lt)):
        yield from subterms(f.left)
        yield from subterms(f.right)
    elif isinstance(f, Not):
        yield from _pattern_terms(f.operand)
    elif isinstance(f, And):
        for c in f.conjuncts:
            yield from _pattern_terms(c)
    elif isinstance(f, Or):
        for d in f.disjuncts:
            yield from _pattern_terms(d)
    elif isinstance(f, (Implies, Iff)):
        yield from _pattern_terms(f.left)
        yield from _pattern_terms(f.right)
    elif isinstance(f, (ForAll, Exists)):
        yield from _pattern_terms(f.body)


def ground_pool(formulas: Iterable[Formula]) -> List[Term]:
    """Collect the distinct ground terms occurring in ``formulas``,
    including reified predicate applications (variables under
    quantifiers make a term non-ground; skip those)."""
    seen: Set[Term] = set()
    pool: List[Term] = []
    for f in formulas:
        for t in _pattern_terms(f):
            if t in seen or term_vars(t):
                continue
            seen.add(t)
            pool.append(t)
    return pool
