"""NNF conversion, skolemization, and Tseitin-style clausification.

The pipeline (used by :mod:`repro.prover.prover`):

1. negate the goal and push negations inward (NNF), turning negative
   ``forall`` into ``exists``;
2. skolemize existentials (fresh constants, or functions of enclosing
   universal variables);
3. clausify with Tseitin auxiliary variables.  After NNF every
   remaining quantifier is a *positive* ``forall``; each becomes an
   opaque "quantifier atom" encoded one-sidedly (Plaisted–Greenbaum):
   instances are added as ``qatom -> instance`` clauses by the
   instantiation engine, which keeps the encoding refutation-sound.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.prover import terms as T
from repro.prover.terms import (
    And,
    Eq,
    Exists,
    FFalse,
    ForAll,
    Formula,
    FTrue,
    Iff,
    Implies,
    Le,
    Lt,
    Not,
    Or,
    Pr,
    TApp,
    Term,
    TVar,
    formula_subst,
)

# ------------------------------------------------------------------------ NNF


def nnf(f: Formula, positive: bool = True) -> Formula:
    """Negation normal form; ``positive=False`` computes nnf(¬f)."""
    if isinstance(f, (FTrue,)):
        return T.TRUE if positive else T.FALSE
    if isinstance(f, (FFalse,)):
        return T.FALSE if positive else T.TRUE
    if isinstance(f, (Eq, Le, Lt, Pr)):
        return f if positive else Not(f)
    if isinstance(f, Not):
        return nnf(f.operand, not positive)
    if isinstance(f, And):
        parts = tuple(nnf(c, positive) for c in f.conjuncts)
        return And(*parts) if positive else Or(*parts)
    if isinstance(f, Or):
        parts = tuple(nnf(d, positive) for d in f.disjuncts)
        return Or(*parts) if positive else And(*parts)
    if isinstance(f, Implies):
        if positive:
            return Or(nnf(f.left, False), nnf(f.right, True))
        return And(nnf(f.left, True), nnf(f.right, False))
    if isinstance(f, Iff):
        a, b = f.left, f.right
        if positive:
            return And(
                Or(nnf(a, False), nnf(b, True)),
                Or(nnf(b, False), nnf(a, True)),
            )
        return Or(
            And(nnf(a, True), nnf(b, False)),
            And(nnf(b, True), nnf(a, False)),
        )
    if isinstance(f, ForAll):
        if positive:
            return ForAll(f.vars, nnf(f.body, True), f.triggers)
        return Exists(f.vars, nnf(f.body, False))
    if isinstance(f, Exists):
        if positive:
            return Exists(f.vars, nnf(f.body, True))
        return ForAll(f.vars, nnf(f.body, False))
    raise TypeError(f"unknown formula {f!r}")


# -------------------------------------------------------------- skolemization

_skolem_counter = itertools.count()


def _default_namer(v: str) -> str:
    return f"@sk{next(_skolem_counter)}_{v}"


def skolemize(
    f: Formula, scope: Tuple[TVar, ...] = (), namer=None
) -> Formula:
    """Replace existentials in an NNF formula with skolem terms.

    ``namer`` maps a bound-variable name to a fresh skolem function
    name; the default draws from a process-global counter.  A
    :class:`repro.prover.session.ProverSession` passes a per-goal
    *canonical* namer instead, so structurally identical goals produce
    identical skolem constants — the property that lets theory-conflict
    clauses learned on one obligation transfer to the next."""
    if namer is None:
        namer = _default_namer
    if isinstance(f, (FTrue, FFalse, Eq, Le, Lt, Pr, Not)):
        return f
    if isinstance(f, And):
        return And(*(skolemize(c, scope, namer) for c in f.conjuncts))
    if isinstance(f, Or):
        return Or(*(skolemize(d, scope, namer) for d in f.disjuncts))
    if isinstance(f, ForAll):
        new_scope = scope + tuple(TVar(v) for v in f.vars)
        return ForAll(f.vars, skolemize(f.body, new_scope, namer), f.triggers)
    if isinstance(f, Exists):
        subst: Dict[str, Term] = {}
        for v in f.vars:
            subst[v] = TApp(namer(v), tuple(scope))
        return skolemize(formula_subst(f.body, subst), scope, namer)
    raise TypeError(f"skolemize expects NNF, got {f!r}")


# --------------------------------------------------------------------- quants


@dataclass(frozen=True)
class QuantAtom:
    """A positive forall subformula, reified as a boolean atom."""

    vars: Tuple[str, ...]
    body: Formula  # NNF, skolemized
    triggers: Tuple[Tuple[Term, ...], ...]


# ----------------------------------------------------------------------- CNF


@dataclass
class ClauseDb:
    """Clauses over integer literals, with the atom <-> variable maps
    the theory layer and instantiation engine need."""

    clauses: List[Tuple[int, ...]] = field(default_factory=list)
    atom_of_var: Dict[int, object] = field(default_factory=dict)
    var_of_atom: Dict[object, int] = field(default_factory=dict)
    _next_var: int = 1

    def new_var(self, atom: Optional[object] = None) -> int:
        var = self._next_var
        self._next_var = var + 1
        if atom is not None:
            self.atom_of_var[var] = atom
            self.var_of_atom[atom] = var
        return var

    def var_for(self, atom: object) -> int:
        existing = self.var_of_atom.get(atom)
        if existing is not None:
            return existing
        return self.new_var(atom)

    def add_clause(self, lits) -> None:
        clause = tuple(sorted(set(lits)))
        # Drop tautologies.
        seen = set(clause)
        if any(-l in seen for l in clause):
            return
        self.clauses.append(clause)

    def learn_theory_conflict(self, conflict) -> None:
        """Learn a theory conflict — a list of (atom, polarity) pairs
        whose conjunction is theory-inconsistent — as the clause ruling
        that assignment out.  Every atom must already have a variable
        (conflict cores are subsets of the checked literals, which come
        from this db's theory atoms)."""
        self.add_clause(
            [
                (-self.var_of_atom[atom] if polarity else self.var_of_atom[atom])
                for atom, polarity in conflict
            ]
        )

    @property
    def num_vars(self) -> int:
        return self._next_var - 1

    def clone(self) -> "ClauseDb":
        """Independent copy sharing no mutable state.

        Atoms themselves are immutable formula objects, so only the
        containers are copied.  A :class:`ProverSession` encodes its
        axiom environment once and clones the result per obligation."""
        return ClauseDb(
            clauses=list(self.clauses),
            atom_of_var=dict(self.atom_of_var),
            var_of_atom=dict(self.var_of_atom),
            _next_var=self._next_var,
        )

    def theory_atoms(self):
        """(var, atom) for atoms the theory solver understands."""
        for var, atom in self.atom_of_var.items():
            if isinstance(atom, (Eq, Le, Lt, Pr)):
                yield var, atom

    def quant_atoms(self):
        for var, atom in self.atom_of_var.items():
            if isinstance(atom, QuantAtom):
                yield var, atom


def _normalize_atom(atom: Formula) -> Formula:
    """Share variables between symmetric atoms (a = b vs b = a)."""
    if isinstance(atom, Eq) and repr(atom.left) > repr(atom.right):
        return Eq(atom.right, atom.left)
    return atom


def encode(db: ClauseDb, f: Formula) -> int:
    """Tseitin-encode an NNF, skolemized formula; returns the literal
    representing it.  Quantifiers become :class:`QuantAtom` variables
    (positive polarity only — NNF guarantees this suffices)."""
    if isinstance(f, FTrue):
        var = db.var_for("@TRUE")
        db.add_clause([var])
        return var
    if isinstance(f, FFalse):
        var = db.var_for("@TRUE")
        db.add_clause([var])
        return -var
    if isinstance(f, (Eq, Le, Lt, Pr)):
        return db.var_for(_normalize_atom(f))
    if isinstance(f, Not):
        return -encode(db, f.operand)
    if isinstance(f, And):
        lits = [encode(db, c) for c in f.conjuncts]
        var = db.new_var()
        for lit in lits:
            db.add_clause([-var, lit])
        db.add_clause([var] + [-lit for lit in lits])
        return var
    if isinstance(f, Or):
        lits = [encode(db, d) for d in f.disjuncts]
        var = db.new_var()
        db.add_clause([-var] + lits)
        for lit in lits:
            db.add_clause([var, -lit])
        return var
    if isinstance(f, ForAll):
        atom = QuantAtom(f.vars, f.body, f.triggers)
        return db.var_for(atom)
    raise TypeError(f"encode expects NNF without Exists, got {f!r}")


def assert_formula(db: ClauseDb, f: Formula, namer=None) -> None:
    """NNF, skolemize, encode and assert ``f`` as a unit clause."""
    prepared = skolemize(nnf(f), namer=namer)
    db.add_clause([encode(db, prepared)])
