"""Nelson–Oppen-style combination of congruence closure and linear
arithmetic.

``check(literals)`` decides the conjunction of theory literals produced
by the SAT core.  Equalities go to both theories; derived equalities
are exchanged between them until fixpoint (the theories are convex
enough over our obligations for this to be complete in practice).
Uninterpreted predicates are encoded as equations with distinguished
boolean constants, the standard Simplify trick.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.prover.euf import CongruenceClosure, EufConflict
from repro.prover.linarith import (
    Constraint,
    entails_eq,
    linearize,
    make_eq,
    make_le,
    satisfiable,
)
from repro.prover.terms import (
    ARITH_FNS,
    Eq,
    Formula,
    Le,
    Lt,
    Pr,
    TApp,
    TInt,
    Term,
    fn,
    subterms,
)

#: (atom, polarity)
Literal = Tuple[Formula, bool]

_TRUE = fn("@true")
_FALSE = fn("@false")

#: Cap on pairwise LA->EUF equality propagation (quadratic in shared
#: atoms); beyond this only disequality-relevant pairs are tested.
_PAIR_LIMIT = 14


class _Conflict(Exception):
    pass


def check(
    literals: List[Literal], deadline: Optional[float] = None
) -> Optional[List[Literal]]:
    """Return None when the conjunction is theory-consistent, else a
    conflicting subset of the literals (minimized as time allows).

    ``deadline`` is an absolute ``time.perf_counter()`` value; past it,
    minimization stops and the current core is returned (a larger
    conflict clause is still sound, just a weaker pruner).

    With profiling on, the whole combination check is timed into the
    ``prover.theory_ms`` counter; the linear-arithmetic share is timed
    separately inside :mod:`repro.prover.linarith`, and the EUF share
    is reported as the difference (see docs/observability.md)."""
    if not obs.enabled():
        return _check(literals, deadline)
    obs.incr("prover.theory_checks")
    with obs.timer("prover.theory_ms"):
        return _check(literals, deadline)


def _check(
    literals: List[Literal], deadline: Optional[float] = None
) -> Optional[List[Literal]]:
    if _consistent(literals):
        return None
    # Chunked deletion (ddmin-style): drop whole blocks first, then
    # shrink block size — far fewer consistency calls than one-by-one.
    core = list(literals)
    chunk = max(1, len(core) // 4)
    while chunk >= 1:
        index = 0
        while index < len(core):
            if deadline is not None and time.perf_counter() > deadline:
                return core
            candidate = core[:index] + core[index + chunk :]
            if candidate and not _consistent(candidate):
                core = candidate
            else:
                index += chunk
        if chunk == 1:
            break
        chunk //= 2
    return core


def _consistent(literals: List[Literal]) -> bool:
    try:
        _check_raw(literals)
        return True
    except (_Conflict, EufConflict):
        return False


def _check_raw(literals: List[Literal]) -> None:
    cc = CongruenceClosure()
    cc.assert_neq(_TRUE, _FALSE)
    constraints: List[Constraint] = []
    diseq_pairs: List[Tuple[Term, Term]] = []
    relevant = _arith_relevant_atoms(literals)

    for atom, polarity in literals:
        if isinstance(atom, Eq):
            cc.add_term(atom.left)
            cc.add_term(atom.right)
            if polarity:
                cc.assert_eq(atom.left, atom.right)
                # Purification: equalities between terms the arithmetic
                # never constrains stay in the EUF world only; feeding
                # them all to Fourier–Motzkin drowns it.
                if _touches(relevant, atom.left, atom.right):
                    constraints.extend(make_eq(atom.left, atom.right))
            else:
                cc.assert_neq(atom.left, atom.right)
                diseq_pairs.append((atom.left, atom.right))
        elif isinstance(atom, Le):
            cc.add_term(atom.left)
            cc.add_term(atom.right)
            if polarity:
                constraints.append(make_le(atom.left, atom.right, strict=False))
            else:
                constraints.append(make_le(atom.right, atom.left, strict=True))
        elif isinstance(atom, Lt):
            cc.add_term(atom.left)
            cc.add_term(atom.right)
            if polarity:
                constraints.append(make_le(atom.left, atom.right, strict=True))
            else:
                constraints.append(make_le(atom.right, atom.left, strict=False))
        elif isinstance(atom, Pr):
            app = fn(f"@p_{atom.name}", *atom.args)
            cc.assert_eq(app, _TRUE if polarity else _FALSE)
        else:  # pragma: no cover - the CNF layer only produces atoms
            raise TypeError(f"not an atom: {atom!r}")

    _propagate(cc, constraints, diseq_pairs)


def _arith_relevant_atoms(literals: List[Literal]) -> Set[Term]:
    """Opaque atoms the arithmetic theory genuinely constrains: those
    under inequality literals or inside interpreted (+,-,*) contexts,
    closed over asserted equalities."""
    relevant: Set[Term] = set()

    def mark(term: Term) -> None:
        coeffs, const = linearize(term)
        relevant.update(coeffs)

    # Seeds: inequality literals and interpreted-arithmetic contexts.
    # Note (dis)equalities with integer literals are NOT seeds: the EUF
    # side decides those exactly (distinct integers are distinct), and
    # seeding them would cascade relevance through the whole E-graph.
    for atom, _polarity in literals:
        if isinstance(atom, (Le, Lt)):
            mark(atom.left)
            mark(atom.right)
        elif isinstance(atom, Eq):
            for side in (atom.left, atom.right):
                for t in subterms(side):
                    if isinstance(t, TApp) and t.fname in ARITH_FNS:
                        mark(t)

    # Close over equalities: if one side is relevant, both are.
    eqs = [a for a, pol in literals if pol and isinstance(a, Eq)]
    changed = True
    while changed:
        changed = False
        for eq in eqs:
            left_in = _touches(relevant, eq.left)
            right_in = _touches(relevant, eq.right)
            if left_in != right_in:
                mark(eq.left)
                mark(eq.right)
                changed = True
    return relevant


def _touches(relevant: Set[Term], *terms: Term) -> bool:
    for t in terms:
        coeffs, _const = linearize(t)
        if any(v in relevant for v in coeffs):
            return True
        if not coeffs:  # a pure constant is always arithmetic
            return True
    return False


def _propagate(
    cc: CongruenceClosure,
    constraints: List[Constraint],
    diseq_pairs: List[Tuple[Term, Term]],
) -> None:
    known_eqs: Set[Tuple[Term, Term]] = set()
    checked_at = -1  # constraint count at the last satisfiability check
    for _ in range(24):  # fixpoint loop, bounded defensively
        changed = False
        shared = _shared_atoms(constraints)

        # EUF -> LA: congruent shared atoms become arithmetic equalities.
        for rep, members in cc.classes().items():
            arith_members = [m for m in members if m in shared or isinstance(m, TInt)]
            for i in range(1, len(arith_members)):
                pair = _norm_pair(arith_members[0], arith_members[i])
                if pair not in known_eqs:
                    known_eqs.add(pair)
                    constraints.extend(make_eq(*pair))
                    changed = True

        if len(constraints) != checked_at:
            if not satisfiable(constraints):
                raise _Conflict()
            checked_at = len(constraints)

        # LA -> EUF: arithmetic-forced equalities feed congruence.
        if constraints:
            for a, b in _candidate_pairs(shared, diseq_pairs, cc):
                pair = _norm_pair(a, b)
                if pair in known_eqs or cc.are_equal(a, b):
                    continue
                if entails_eq(constraints, a, b):
                    cc.assert_eq(a, b)  # may raise EufConflict via diseqs
                    known_eqs.add(pair)
                    constraints.extend(make_eq(a, b))
                    changed = True

        if not changed:
            return
    # Fixpoint bound exhausted: treat as consistent (no proof claimed).


def _shared_atoms(constraints: List[Constraint]) -> Set[Term]:
    return {v for c in constraints for v in c.coeffs}


def _norm_pair(a: Term, b: Term) -> Tuple[Term, Term]:
    return (a, b) if repr(a) <= repr(b) else (b, a)


def _candidate_pairs(
    shared: Set[Term],
    diseq_pairs: List[Tuple[Term, Term]],
    cc: CongruenceClosure,
) -> List[Tuple[Term, Term]]:
    """Pairs worth testing for arithmetic-entailed equality.

    Testing every pair of shared atoms is quadratically many expensive
    Fourier–Motzkin entailment probes; only two kinds of derived
    equalities can advance the proof, so only those are probed:

    * pairs under an asserted disequality (forcing them equal is an
      immediate conflict), and
    * pairs of same-position arguments of same-symbol applications
      (forcing them equal fires a congruence).

    Both terms must actually occur in the arithmetic constraints; a
    term the constraints never mention cannot be forced equal to
    anything.
    """
    pairs: List[Tuple[Term, Term]] = []
    seen: Set[Tuple[Term, Term]] = set()

    def consider(a: Term, b: Term) -> None:
        if a == b:
            return
        if a not in shared and not isinstance(a, TInt):
            return
        if b not in shared and not isinstance(b, TInt):
            return
        pair = _norm_pair(a, b)
        if pair not in seen:
            seen.add(pair)
            pairs.append(pair)

    for a, b in diseq_pairs:
        consider(a, b)

    by_fn: Dict[Tuple[str, int], List[TApp]] = {}
    for t in cc.terms:
        if isinstance(t, TApp) and t.args:
            by_fn.setdefault((t.fname, len(t.args)), []).append(t)
    for group in by_fn.values():
        if len(group) > _PAIR_LIMIT:
            group = group[:_PAIR_LIMIT]
        for i, app_a in enumerate(group):
            for app_b in group[i + 1 :]:
                if cc.are_equal(app_a, app_b):
                    continue
                for arg_a, arg_b in zip(app_a.args, app_b.args):
                    if not cc.are_equal(arg_a, arg_b):
                        consider(arg_a, arg_b)
    return pairs
