"""Nelson–Oppen-style combination of congruence closure and linear
arithmetic.

``check(literals)`` decides the conjunction of theory literals produced
by the SAT core.  Equalities go to both theories; derived equalities
are exchanged between them until fixpoint (the theories are convex
enough over our obligations for this to be complete in practice).
Uninterpreted predicates are encoded as equations with distinguished
boolean constants, the standard Simplify trick.

Two conflict-core strategies coexist:

* **Explained cores** (the default; pass a :class:`TheoryState`): the
  congruence closure runs with a proof forest and every constraint
  carries provenance tags, so a conflict *names* the responsible input
  literals directly — no re-closure, no search.  The state is also
  incremental: literals are pushed as journaled frames and only the
  suffix that differs from the previous check is retracted/re-asserted,
  so successive checks along a SAT trail share their common prefix.
* **Search-based cores** (``state=None``, the ``--no-explain``
  ablation): the original cold path — rebuild the closure per check and
  shrink the conflict by chunked deletion (ddmin).

Both strategies decide consistency with the same procedures, so the
sat/unsat verdict of every check is identical across them; only how a
core is *located* differs.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.prover.euf import CongruenceClosure, EufConflict, Tags
from repro.prover.linarith import (
    Constraint,
    entails_eq_core,
    explain_unsat,
    linearize,
    make_eq,
    make_le,
)
from repro.prover.terms import (
    ARITH_FNS,
    Eq,
    Formula,
    Le,
    Lt,
    Pr,
    TApp,
    TInt,
    Term,
    fn,
    subterms,
)

#: (atom, polarity)
Literal = Tuple[Formula, bool]

_TRUE = fn("@true")
_FALSE = fn("@false")

_NO_TAGS: Tags = frozenset()

#: Cap on pairwise LA->EUF equality propagation (quadratic in shared
#: atoms); beyond this only disequality-relevant pairs are tested.
_PAIR_LIMIT = 14


class _Conflict(Exception):
    def __init__(self, core: Tags = _NO_TAGS):
        super().__init__()
        self.core = core


def check(
    literals: List[Literal],
    deadline: Optional[float] = None,
    state: Optional["TheoryState"] = None,
) -> Optional[List[Literal]]:
    """Return None when the conjunction is theory-consistent, else a
    conflicting subset of the literals (minimized as time allows).

    With ``state`` (a :class:`TheoryState`), the check runs
    incrementally against that state's warm congruence closure and the
    conflict core is read off the proof forest; without it, the closure
    is rebuilt cold and the core found by ddmin.

    ``deadline`` is an absolute ``time.perf_counter()`` value; past it,
    minimization stops and the current core is returned (a larger
    conflict clause is still sound, just a weaker pruner).

    With profiling on, the whole combination check is timed into the
    ``prover.theory_ms`` counter; the linear-arithmetic share is timed
    separately inside :mod:`repro.prover.linarith`, and the EUF share
    is reported as the difference (see docs/observability.md)."""
    if not obs.enabled():
        return _dispatch(literals, deadline, state)
    obs.incr("prover.theory_checks")
    with obs.timer("prover.theory_ms"):
        return _dispatch(literals, deadline, state)


def _dispatch(
    literals: List[Literal],
    deadline: Optional[float],
    state: Optional["TheoryState"],
) -> Optional[List[Literal]]:
    if state is None:
        return _check(literals, deadline)
    return state.check(literals, deadline)


# --------------------------------------------------------------- cold path


def _check(
    literals: List[Literal], deadline: Optional[float] = None
) -> Optional[List[Literal]]:
    if _consistent(literals):
        return None
    # Chunked deletion (ddmin-style): drop whole blocks first, then
    # shrink block size — far fewer consistency calls than one-by-one.
    core = list(literals)
    chunk = max(1, len(core) // 4)
    while chunk >= 1:
        index = 0
        while index < len(core):
            if deadline is not None and time.perf_counter() > deadline:
                # Budget tripped mid-chunk: the core is sound but may
                # not be minimal — record it as such so solver stats
                # can tell it apart from a fully minimized one.
                obs.incr("prover.cores")
                obs.incr("prover.cores_nonminimal")
                return core
            candidate = core[:index] + core[index + chunk :]
            if candidate and not _consistent(candidate):
                core = candidate
            else:
                index += chunk
        if chunk == 1:
            break
        chunk //= 2
    obs.incr("prover.cores")
    obs.incr("prover.cores_minimal")
    return core


def _consistent(literals: List[Literal]) -> bool:
    try:
        _check_raw(literals)
        return True
    except (_Conflict, EufConflict):
        return False


def _check_raw(literals: List[Literal]) -> None:
    cc = CongruenceClosure()
    cc.assert_neq(_TRUE, _FALSE)
    constraints: List[Constraint] = []
    diseq_pairs: List[Tuple[Term, Term]] = []
    relevant = _arith_relevant_atoms(literals)

    for atom, polarity in literals:
        if isinstance(atom, Eq):
            cc.add_term(atom.left)
            cc.add_term(atom.right)
            if polarity:
                cc.assert_eq(atom.left, atom.right)
                # Purification: equalities between terms the arithmetic
                # never constrains stay in the EUF world only; feeding
                # them all to Fourier–Motzkin drowns it.
                if _touches(relevant, atom.left, atom.right):
                    constraints.extend(make_eq(atom.left, atom.right))
            else:
                cc.assert_neq(atom.left, atom.right)
                diseq_pairs.append((atom.left, atom.right))
        elif isinstance(atom, Le):
            cc.add_term(atom.left)
            cc.add_term(atom.right)
            if polarity:
                constraints.append(make_le(atom.left, atom.right, strict=False))
            else:
                constraints.append(make_le(atom.right, atom.left, strict=True))
        elif isinstance(atom, Lt):
            cc.add_term(atom.left)
            cc.add_term(atom.right)
            if polarity:
                constraints.append(make_le(atom.left, atom.right, strict=True))
            else:
                constraints.append(make_le(atom.right, atom.left, strict=False))
        elif isinstance(atom, Pr):
            app = fn(f"@p_{atom.name}", *atom.args)
            cc.assert_eq(app, _TRUE if polarity else _FALSE)
        else:  # pragma: no cover - the CNF layer only produces atoms
            raise TypeError(f"not an atom: {atom!r}")

    _propagate(cc, constraints, diseq_pairs)


# -------------------------------------------------------- incremental path


class TheoryState:
    """Push/pop theory solver state with explanation-producing cores.

    One explain-mode congruence closure plus a tagged constraint list,
    mirrored by a stack of *frames* — one per asserted input literal,
    each remembering the trail mark and constraint count it started at
    so it can be retracted exactly.  ``check`` diffs the incoming
    literal list against the stack, pops the divergent suffix, pushes
    the new literals, and runs Nelson–Oppen propagation in a scratch
    frame that is always popped afterwards (so the persistent state is
    exactly the asserted literals).  A :class:`~repro.prover.session`
    keeps one instance warm across obligations sharing an environment,
    which is where the prefix reuse pays off most: canonical goal
    skolems make successive obligations' literal lists near-identical.
    """

    def __init__(self) -> None:
        self.cc = CongruenceClosure(explain=True)
        self.cc.assert_neq(_TRUE, _FALSE)  # axiom: carries no tags
        self.constraints: List[Constraint] = []
        self.diseq_pairs: List[Tuple[Term, Term]] = []
        # frames[i] = (literal, fed_la, cc_mark, n_constraints, n_diseqs)
        self.frames: List[Tuple] = []

    # Public push/pop face (the SMT loop's assert/retract protocol).

    def push(self, literal: Literal, fed_la: Optional[bool] = None) -> None:
        """Assert one literal as a retractable frame.  ``fed_la``
        overrides the purification decision (by default it is computed
        against the currently asserted literals plus this one)."""
        if fed_la is None:
            lits = [f[0] for f in self.frames] + [literal]
            relevant = _arith_relevant_atoms(lits)
            fed_la = self._feeds_la(literal, relevant)
        self._push_frame(literal, fed_la)

    def pop(self, count: int = 1) -> None:
        """Retract the ``count`` most recent frames."""
        self.rewind(len(self.frames) - count)

    @property
    def depth(self) -> int:
        return len(self.frames)

    def rewind(self, keep: int) -> None:
        """Retract frames until only the first ``keep`` remain."""
        frames = self.frames
        if keep < 0 or keep > len(frames):
            raise IndexError(f"rewind to {keep} of {len(frames)} frames")
        if keep == len(frames):
            return
        _lit, _fed, cc_mark, n_con, n_dis = frames[keep]
        self.cc.pop_to(cc_mark)
        del self.constraints[n_con:]
        del self.diseq_pairs[n_dis:]
        del frames[keep:]

    # The full check: diff, retract, assert, propagate, explain.

    def check(
        self, literals: List[Literal], deadline: Optional[float] = None
    ) -> Optional[List[Literal]]:
        relevant = _arith_relevant_atoms(literals)
        desired = [
            (lit, self._feeds_la(lit, relevant)) for lit in literals
        ]
        # Longest reusable prefix: a frame survives only if both the
        # literal and its purification decision are unchanged (the
        # latter depends on the whole literal list, so it can flip for
        # an unchanged literal).
        frames = self.frames
        keep = 0
        limit = min(len(frames), len(desired))
        while (
            keep < limit
            and frames[keep][0] == desired[keep][0]
            and frames[keep][1] == desired[keep][1]
        ):
            keep += 1
        obs.incr("prover.theory_frames_reused", keep)
        obs.incr("prover.theory_frames_pushed", len(desired) - keep)
        self.rewind(keep)

        core: Optional[Tags] = None
        for lit, fed in desired[keep:]:
            try:
                self._push_frame(lit, fed)
            except EufConflict as exc:
                core = exc.core if exc.core is not None else _NO_TAGS
                break
        if core is None:
            core = self._propagate_scratch()
        if core is None:
            return None
        return self._finish_core(core, literals, deadline)

    # ------------------------------------------------------------ internals

    @staticmethod
    def _feeds_la(literal: Literal, relevant: Set[Term]) -> bool:
        atom, polarity = literal
        return (
            polarity
            and isinstance(atom, Eq)
            and _touches(relevant, atom.left, atom.right)
        )

    def _push_frame(self, lit: Literal, fed: bool) -> None:
        cc = self.cc
        cc_mark = cc.mark
        n_con = len(self.constraints)
        n_dis = len(self.diseq_pairs)
        try:
            self._assert_literal(lit, fed)
        except EufConflict:
            # Roll back the partial frame so the stack stays a prefix
            # of successfully asserted literals.
            cc.pop_to(cc_mark)
            del self.constraints[n_con:]
            del self.diseq_pairs[n_dis:]
            raise
        self.frames.append((lit, fed, cc_mark, n_con, n_dis))

    def _assert_literal(self, lit: Literal, fed: bool) -> None:
        atom, polarity = lit
        tags = frozenset((lit,))
        cc = self.cc
        if isinstance(atom, Eq):
            cc.add_term(atom.left)
            cc.add_term(atom.right)
            if polarity:
                cc.assert_eq(atom.left, atom.right, tags=tags)
                if fed:
                    self.constraints.extend(
                        make_eq(atom.left, atom.right, tags=tags)
                    )
            else:
                cc.assert_neq(atom.left, atom.right, tags=tags)
                self.diseq_pairs.append((atom.left, atom.right))
        elif isinstance(atom, Le):
            cc.add_term(atom.left)
            cc.add_term(atom.right)
            if polarity:
                self.constraints.append(
                    make_le(atom.left, atom.right, strict=False, tags=tags)
                )
            else:
                self.constraints.append(
                    make_le(atom.right, atom.left, strict=True, tags=tags)
                )
        elif isinstance(atom, Lt):
            cc.add_term(atom.left)
            cc.add_term(atom.right)
            if polarity:
                self.constraints.append(
                    make_le(atom.left, atom.right, strict=True, tags=tags)
                )
            else:
                self.constraints.append(
                    make_le(atom.right, atom.left, strict=False, tags=tags)
                )
        elif isinstance(atom, Pr):
            app = fn(f"@p_{atom.name}", *atom.args)
            cc.assert_eq(app, _TRUE if polarity else _FALSE, tags=tags)
        else:  # pragma: no cover - the CNF layer only produces atoms
            raise TypeError(f"not an atom: {atom!r}")

    def _propagate_scratch(self) -> Optional[Tags]:
        """Run Nelson–Oppen propagation in a frame that is popped
        whether it conflicts or not, so derived facts never outlive the
        check that produced them."""
        cc = self.cc
        cc_mark = cc.mark
        n_con = len(self.constraints)
        n_dis = len(self.diseq_pairs)
        try:
            _propagate(cc, self.constraints, self.diseq_pairs)
            return None
        except _Conflict as exc:
            return exc.core
        except EufConflict as exc:
            return exc.core if exc.core is not None else _NO_TAGS
        finally:
            cc.pop_to(cc_mark)
            del self.constraints[n_con:]
            del self.diseq_pairs[n_dis:]

    def _finish_core(
        self,
        core: Tags,
        literals: List[Literal],
        deadline: Optional[float],
    ) -> List[Literal]:
        """Order an explained core by input position, verify it, and
        polish it to 1-minimality (timed as ``prover.explain_ms``)."""
        if not obs.enabled():
            return self._finish_core_raw(core, literals, deadline)
        with obs.timer("prover.explain_ms"):
            return self._finish_core_raw(core, literals, deadline)

    def _finish_core_raw(
        self,
        core: Tags,
        literals: List[Literal],
        deadline: Optional[float],
    ) -> List[Literal]:
        index_of = {lit: i for i, lit in enumerate(literals)}
        core_list = sorted(
            (lit for lit in core if lit in index_of),
            key=index_of.__getitem__,
        )
        if not core_list or _consistent(core_list):
            # Safety net: a core that does not check out as a genuine
            # conflict must never be learned (an unsound clause could
            # flip verdicts), so fall back to the search-based path.
            obs.incr("prover.explain_fallbacks")
            return _check(literals, deadline)
        # 1-minimality polish: explained cores are tiny, so drop-one
        # passes until a full pass removes nothing (each survivor is
        # then certified against the final core).
        while len(core_list) > 1:
            dropped = False
            index = 0
            while index < len(core_list):
                if deadline is not None and time.perf_counter() > deadline:
                    obs.incr("prover.cores")
                    obs.incr("prover.cores_nonminimal")
                    return core_list
                candidate = core_list[:index] + core_list[index + 1 :]
                if candidate and not _consistent(candidate):
                    core_list = candidate
                    dropped = True
                else:
                    index += 1
            if not dropped:
                break
        obs.incr("prover.cores")
        obs.incr("prover.cores_minimal")
        return core_list


# ------------------------------------------------------------- propagation


def _arith_relevant_atoms(literals: List[Literal]) -> Set[Term]:
    """Opaque atoms the arithmetic theory genuinely constrains: those
    under inequality literals or inside interpreted (+,-,*) contexts,
    closed over asserted equalities."""
    relevant: Set[Term] = set()

    def mark(term: Term) -> None:
        coeffs, const = linearize(term)
        relevant.update(coeffs)

    # Seeds: inequality literals and interpreted-arithmetic contexts.
    # Note (dis)equalities with integer literals are NOT seeds: the EUF
    # side decides those exactly (distinct integers are distinct), and
    # seeding them would cascade relevance through the whole E-graph.
    for atom, _polarity in literals:
        if isinstance(atom, (Le, Lt)):
            mark(atom.left)
            mark(atom.right)
        elif isinstance(atom, Eq):
            for side in (atom.left, atom.right):
                for t in subterms(side):
                    if isinstance(t, TApp) and t.fname in ARITH_FNS:
                        mark(t)

    # Close over equalities: if one side is relevant, both are.
    eqs = [a for a, pol in literals if pol and isinstance(a, Eq)]
    changed = True
    while changed:
        changed = False
        for eq in eqs:
            left_in = _touches(relevant, eq.left)
            right_in = _touches(relevant, eq.right)
            if left_in != right_in:
                mark(eq.left)
                mark(eq.right)
                changed = True
    return relevant


def _touches(relevant: Set[Term], *terms: Term) -> bool:
    for t in terms:
        coeffs, _const = linearize(t)
        if any(v in relevant for v in coeffs):
            return True
        if not coeffs:  # a pure constant is always arithmetic
            return True
    return False


def _propagate(
    cc: CongruenceClosure,
    constraints: List[Constraint],
    diseq_pairs: List[Tuple[Term, Term]],
) -> None:
    known_eqs: Set[Tuple[Term, Term]] = set()
    checked_at = -1  # constraint count at the last satisfiability check
    explains = cc.explains
    for _ in range(24):  # fixpoint loop, bounded defensively
        changed = False
        shared = _shared_atoms(constraints)

        # EUF -> LA: congruent shared atoms become arithmetic equalities
        # (tagged, in explain mode, with the literals that merged them).
        for rep, members in cc.classes().items():
            arith_members = [m for m in members if m in shared or isinstance(m, TInt)]
            for i in range(1, len(arith_members)):
                pair = _norm_pair(arith_members[0], arith_members[i])
                if pair not in known_eqs:
                    known_eqs.add(pair)
                    tags = cc.explain(*pair) if explains else _NO_TAGS
                    constraints.extend(make_eq(*pair, tags=tags))
                    changed = True

        if len(constraints) != checked_at:
            conflict_tags = explain_unsat(constraints)
            if conflict_tags is not None:
                raise _Conflict(conflict_tags)
            checked_at = len(constraints)

        # LA -> EUF: arithmetic-forced equalities feed congruence.
        if constraints:
            for a, b in _candidate_pairs(shared, diseq_pairs, cc):
                pair = _norm_pair(a, b)
                if pair in known_eqs or cc.are_equal(a, b):
                    continue
                eq_tags = entails_eq_core(constraints, a, b)
                if eq_tags is not None:
                    # may raise EufConflict via diseqs
                    cc.assert_eq(a, b, tags=eq_tags)
                    known_eqs.add(pair)
                    constraints.extend(make_eq(a, b, tags=eq_tags))
                    changed = True

        if not changed:
            return
    # Fixpoint bound exhausted: treat as consistent (no proof claimed).


def _shared_atoms(constraints: List[Constraint]) -> Set[Term]:
    return {v for c in constraints for v in c.coeffs}


def _norm_pair(a: Term, b: Term) -> Tuple[Term, Term]:
    return (a, b) if repr(a) <= repr(b) else (b, a)


def _candidate_pairs(
    shared: Set[Term],
    diseq_pairs: List[Tuple[Term, Term]],
    cc: CongruenceClosure,
) -> List[Tuple[Term, Term]]:
    """Pairs worth testing for arithmetic-entailed equality.

    Testing every pair of shared atoms is quadratically many expensive
    Fourier–Motzkin entailment probes; only two kinds of derived
    equalities can advance the proof, so only those are probed:

    * pairs under an asserted disequality (forcing them equal is an
      immediate conflict), and
    * pairs of same-position arguments of same-symbol applications
      (forcing them equal fires a congruence).

    Both terms must actually occur in the arithmetic constraints; a
    term the constraints never mention cannot be forced equal to
    anything.
    """
    pairs: List[Tuple[Term, Term]] = []
    seen: Set[Tuple[Term, Term]] = set()

    def consider(a: Term, b: Term) -> None:
        if a == b:
            return
        if a not in shared and not isinstance(a, TInt):
            return
        if b not in shared and not isinstance(b, TInt):
            return
        pair = _norm_pair(a, b)
        if pair not in seen:
            seen.add(pair)
            pairs.append(pair)

    for a, b in diseq_pairs:
        consider(a, b)

    by_fn: Dict[Tuple[str, int], List[TApp]] = {}
    for t in cc.terms:
        if isinstance(t, TApp) and t.args:
            by_fn.setdefault((t.fname, len(t.args)), []).append(t)
    for group in by_fn.values():
        if len(group) > _PAIR_LIMIT:
            group = group[:_PAIR_LIMIT]
        for i, app_a in enumerate(group):
            for app_b in group[i + 1 :]:
                if cc.are_equal(app_a, app_b):
                    continue
                for arg_a, arg_b in zip(app_a.args, app_b.args):
                    if not cc.are_equal(arg_a, arg_b):
                        consider(arg_a, arg_b)
    return pairs
