"""Integer linear arithmetic: Gaussian elimination for equalities,
Fourier–Motzkin for the residual inequalities.

Constraints are linear combinations over opaque "atoms" (non-arithmetic
terms are treated as variables; the Nelson–Oppen layer keeps them in
sync with congruence closure).  The domain is the integers: strict
bounds with integral coefficients are tightened (``t < c`` becomes
``t <= c - 1``), which makes the procedure complete for the
conjunctions our proof obligations produce.

Most constraints arriving from the equality-heavy obligations are
equalities; eliminating them by substitution first keeps the (worst-
case exponential) Fourier–Motzkin step tiny.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro import obs
from repro.prover.terms import ARITH_FNS, TApp, TInt, Term

_ZERO = Fraction(0)
_ONE = Fraction(1)

#: Explanation tags carried by constraints (opaque; the Nelson–Oppen
#: layer uses frozensets of input literals).  Every derived constraint
#: unions the tags of its parents — Farkas-style provenance — so an
#: infeasibility can name the input constraints responsible.
Tags = FrozenSet
_NO_TAGS: Tags = frozenset()


class NotLinear(Exception):
    """A term is not linear in its opaque atoms (shouldn't happen; true
    nonlinear products are opaque atoms by construction)."""


def linearize(t: Term) -> Tuple[Dict[Term, Fraction], Fraction]:
    """Decompose a term into (coefficients over opaque atoms, constant).

    ``+``/``-`` are interpreted; ``*`` is interpreted when at least one
    side is a numeric constant, otherwise the whole product is an opaque
    atom (handled by the sign-lemma module)."""
    if isinstance(t, TInt):
        return {}, Fraction(t.value)
    if isinstance(t, TApp) and t.fname in ARITH_FNS:
        if t.fname == "+":
            coeffs: Dict[Term, Fraction] = {}
            const = _ZERO
            for a in t.args:
                c2, k2 = linearize(a)
                _accumulate(coeffs, c2, _ONE)
                const += k2
            return coeffs, const
        if t.fname == "-":
            if len(t.args) == 1:
                c, k = linearize(t.args[0])
                return {v: -f for v, f in c.items()}, -k
            c1, k1 = linearize(t.args[0])
            c2, k2 = linearize(t.args[1])
            _accumulate(c1, c2, -_ONE)
            return c1, k1 - k2
        if t.fname == "*":
            c1, k1 = linearize(t.args[0])
            c2, k2 = linearize(t.args[1])
            if not c1:  # constant * linear
                return {v: f * k1 for v, f in c2.items()}, k1 * k2
            if not c2:
                return {v: f * k2 for v, f in c1.items()}, k1 * k2
            # Nonlinear: opaque atom.
            return {t: _ONE}, _ZERO
    # Opaque atom (uninterpreted application, variable-like).
    return {t: _ONE}, _ZERO


def _accumulate(
    into: Dict[Term, Fraction], other: Dict[Term, Fraction], factor: Fraction
) -> None:
    for v, f in other.items():
        new = into.get(v, _ZERO) + factor * f
        if new == 0:
            into.pop(v, None)
        else:
            into[v] = new


class Constraint:
    """``expr (op) 0`` where op is '=', '<=' or '<'."""

    __slots__ = ("coeffs", "const", "op", "tags")

    def __init__(
        self,
        coeffs: Dict[Term, Fraction],
        const: Fraction,
        op: str,
        tags: Tags = _NO_TAGS,
    ):
        self.coeffs = {v: f for v, f in coeffs.items() if f != 0}
        self.const = const
        self.op = op
        self.tags = tags

    def tightened(self) -> "Constraint":
        """Integer tightening.

        * ``expr < 0`` with integral coefficients becomes ``expr <= -1``;
        * a common coefficient divisor g lets the bound round down:
          ``g·(c·x) <= b`` becomes ``c·x <= floor(b/g)``;
        * an equality whose coefficient gcd does not divide the constant
          is infeasible outright (e.g. ``2x = 1``).
        """
        import math

        c = self
        integral = all(
            f.denominator == 1 for f in c.coeffs.values()
        ) and c.const.denominator == 1
        if not integral or not c.coeffs:
            return c
        if c.op == "<":
            c = Constraint(c.coeffs, c.const + 1, "<=", c.tags)
        g = 0
        for f in c.coeffs.values():
            g = math.gcd(g, abs(int(f)))
        if g > 1:
            if c.op == "=":
                if int(c.const) % g != 0:  # infeasible
                    return Constraint({}, Fraction(1), "=", c.tags)
                return Constraint(
                    {v: f / g for v, f in c.coeffs.items()},
                    c.const / g, "=", c.tags,
                )
            # coeffs·x <= -const  ==>  (coeffs/g)·x <= floor(-const/g)
            bound = -c.const
            new_bound = Fraction(int(bound) // g)
            return Constraint(
                {v: f / g for v, f in c.coeffs.items()}, -new_bound, c.op,
                c.tags,
            )
        return c

    def is_trivial_true(self) -> bool:
        if self.coeffs:
            return False
        if self.op == "=":
            return self.const == 0
        return self.const < 0 if self.op == "<" else self.const <= 0

    def is_trivial_false(self) -> bool:
        return not self.coeffs and not self.is_trivial_true()

    def substitute(
        self,
        var: Term,
        solution: "Tuple[Dict[Term, Fraction], Fraction, Tags]",
    ) -> "Constraint":
        """Replace ``var`` by the linear expression ``solution``; the
        result inherits the tags of the defining equality."""
        factor = self.coeffs.get(var)
        if factor is None or factor == 0:
            return self
        sol_coeffs, sol_const, sol_tags = solution
        coeffs = dict(self.coeffs)
        del coeffs[var]
        _accumulate(coeffs, sol_coeffs, factor)
        return Constraint(
            coeffs, self.const + factor * sol_const, self.op,
            self.tags | sol_tags,
        )

    def __repr__(self) -> str:
        parts = [f"{f}*{v}" for v, f in self.coeffs.items()]
        return f"{' + '.join(parts) or '0'} + {self.const} {self.op} 0"


def make_le(
    left: Term, right: Term, strict: bool, tags: Tags = _NO_TAGS
) -> Constraint:
    """Build ``left <= right`` / ``left < right`` as a Constraint."""
    lc, lk = linearize(left)
    rc, rk = linearize(right)
    _accumulate(lc, rc, -_ONE)
    return Constraint(lc, lk - rk, "<" if strict else "<=", tags).tightened()


def make_eq(left: Term, right: Term, tags: Tags = _NO_TAGS) -> List[Constraint]:
    lc, lk = linearize(left)
    rc, rk = linearize(right)
    _accumulate(lc, rc, -_ONE)
    return [Constraint(lc, lk - rk, "=", tags).tightened()]


def satisfiable(constraints: List[Constraint], limit: int = 4000) -> bool:
    """Rational satisfiability with integer tightening.

    Equalities are removed by Gaussian substitution; Fourier–Motzkin
    decides the residual inequalities.  ``limit`` caps derived
    constraints — exceeding it returns True (unknown-sat), which only
    ever makes the prover *less* willing to claim a proof.

    Calls are timed into ``prover.linarith_ms`` when profiling is on
    (including the pair of calls behind every ``entails_eq`` probe)."""
    return explain_unsat(constraints, limit) is None


def explain_unsat(
    constraints: List[Constraint], limit: int = 4000
) -> Optional[Tags]:
    """Like :func:`satisfiable`, but an infeasible system answers with
    the union of tags of the constraints its refutation combined
    (``None`` means satisfiable / unknown-sat).  Same decision
    procedure, so the verdict always agrees with :func:`satisfiable`."""
    if not obs.enabled():
        return _solve(constraints, limit)
    obs.incr("prover.linarith_calls")
    with obs.timer("prover.linarith_ms"):
        return _solve(constraints, limit)


def _solve(constraints: List[Constraint], limit: int = 4000) -> Optional[Tags]:
    eqs = [c for c in constraints if c.op == "="]
    ineqs = [c for c in constraints if c.op != "="]

    # --- Gaussian elimination of equalities.  Substituting out a
    # variable with a ±1 coefficient is exact over the integers; other
    # pivots lose integrality (substituting q out of m = 2q erases the
    # parity constraint on m), so unit pivots are taken first.
    while eqs:
        index = next(
            (
                i
                for i, c in enumerate(eqs)
                if any(abs(f) == 1 for f in c.coeffs.values())
            ),
            len(eqs) - 1,
        )
        eq = eqs.pop(index).tightened()
        if eq.is_trivial_false():
            return eq.tags
        if not eq.coeffs:
            continue
        var, coeff = min(
            eq.coeffs.items(), key=lambda item: (abs(item[1]) != 1, repr(item[0]))
        )
        # var = (-const - rest) / coeff
        sol_coeffs = {
            v: -f / coeff for v, f in eq.coeffs.items() if v != var
        }
        sol_const = -eq.const / coeff
        solution = (sol_coeffs, sol_const, eq.tags)
        eqs = [c.substitute(var, solution) for c in eqs]
        new_ineqs = []
        for c in ineqs:
            c2 = c.substitute(var, solution).tightened()
            if c2.is_trivial_false():
                return c2.tags
            if not c2.is_trivial_true():
                new_ineqs.append(c2)
        ineqs = new_ineqs

    # --- Fourier–Motzkin on the inequalities.
    work = [c for c in ineqs if not c.is_trivial_true()]
    for c in work:
        if c.is_trivial_false():
            return c.tags
    while True:
        ups: Dict[Term, int] = {}
        downs: Dict[Term, int] = {}
        for c in work:
            for v, f in c.coeffs.items():
                if f > 0:
                    ups[v] = ups.get(v, 0) + 1
                else:
                    downs[v] = downs.get(v, 0) + 1
        variables = set(ups) | set(downs)
        if not variables:
            return None
        # Choose the variable with the fewest pairings to limit blowup.
        var = min(variables, key=lambda v: ups.get(v, 0) * downs.get(v, 0))
        uppers = [c for c in work if c.coeffs.get(var, _ZERO) > 0]
        lowers = [c for c in work if c.coeffs.get(var, _ZERO) < 0]
        rest = [c for c in work if var not in c.coeffs]
        derived: List[Constraint] = []
        for up in uppers:
            for low in lowers:
                cu = up.coeffs[var]
                cl = -low.coeffs[var]
                coeffs: Dict[Term, Fraction] = {}
                _accumulate(coeffs, up.coeffs, cl)
                _accumulate(coeffs, low.coeffs, cu)
                coeffs.pop(var, None)
                const = up.const * cl + low.const * cu
                op = "<" if (up.op == "<" or low.op == "<") else "<="
                combo = Constraint(coeffs, const, op, up.tags | low.tags)
                combo = combo.tightened()
                if combo.is_trivial_false():
                    return combo.tags
                if not combo.is_trivial_true():
                    derived.append(combo)
        work = rest + derived
        if len(work) > limit:
            return None  # give up: report satisfiable (no proof claimed)


def entails_eq(constraints: List[Constraint], a: Term, b: Term) -> bool:
    """Do the constraints force ``a = b``?  True iff both strict orders
    are inconsistent with them."""
    lt = make_le(a, b, strict=True)
    gt = make_le(b, a, strict=True)
    return not satisfiable(constraints + [lt]) and not satisfiable(
        constraints + [gt]
    )


def entails_eq_core(
    constraints: List[Constraint], a: Term, b: Term
) -> Optional[Tags]:
    """Explaining variant of :func:`entails_eq`: when the constraints
    force ``a = b``, answer with the union of tags of the constraints
    both refutations used (the probe constraints carry no tags)."""
    lt_core = explain_unsat(constraints + [make_le(a, b, strict=True)])
    if lt_core is None:
        return None
    gt_core = explain_unsat(constraints + [make_le(b, a, strict=True)])
    if gt_core is None:
        return None
    return lt_core | gt_core
