"""A Simplify-style automatic theorem prover.

The original system discharged its proof obligations with Simplify, the
Nelson–Oppen prover from ESC/Java.  This package reimplements the
fragment those obligations need:

* a DPLL SAT core over the boolean structure (lazy SMT),
* congruence closure for equality with uninterpreted functions,
* Fourier–Motzkin integer linear arithmetic (with tightening),
* Nelson–Oppen-style equality exchange between the two theories,
* sign/zero lemmas for nonlinear products (Simplify used comparable
  heuristics for multiplication), and
* trigger-based E-matching instantiation of universally quantified
  axioms.

The top-level entry point is :class:`Prover`: add axioms (possibly
quantified), then ``prove(goal)``.  Like Simplify, a failed proof means
"not proven" — the obligation may be invalid or merely beyond the
prover; the soundness checker reports it as a potential unsoundness
either way.
"""

from repro.prover.terms import (
    And,
    Eq,
    Exists,
    FALSE,
    ForAll,
    Formula,
    Iff,
    Implies,
    Int,
    Le,
    Lt,
    Not,
    Or,
    Pr,
    TRUE,
    Term,
    TInt,
    TApp,
    TVar,
    fn,
)
from repro.prover.prover import Prover, ProofResult

__all__ = [
    "And", "Eq", "Exists", "FALSE", "ForAll", "Formula", "Iff", "Implies",
    "Int", "Le", "Lt", "Not", "Or", "Pr", "TRUE", "Term", "TInt", "TApp",
    "TVar", "fn",
    "Prover", "ProofResult",
]
