"""Incremental prover sessions: solver-state reuse across obligations.

Profiling (PR 5, confirmed on the committed bench history) shows the
prover's wall time is dominated by Nelson–Oppen theory checks, and that
roughly half of all theory conflicts recur across the obligations of a
single qualifier — the same axioms produce the same contradictions,
merely spelled with different skolem constants.  A
:class:`ProverSession` makes that reuse real for every obligation
sharing an *axiom environment* (axioms + qualifier definition text,
digested by :func:`repro.cache.fingerprint.environment_key`):

* the axiom set is NNF'd, skolemized, and Tseitin-encoded **once**; each
  obligation starts from a :meth:`ClauseDb.clone` of that base, so axiom
  skolem constants are stable for the session's lifetime;
* goal-side skolems are named **canonically per prove call**
  (``@sg0_x``, ``@sg1_y``, … with the counter reset for every goal), so
  structurally identical subgoals produce identical atoms across
  obligations;
* theory conflicts learned during one obligation are kept as *cores*
  (sets of theory literals) and re-seeded as clauses into later
  obligations — but only when every atom of the core already exists in
  the new obligation's clause database, which keeps the ground-term
  pool, and therefore the instantiation sequence, untouched;
* raw theory-consistency queries are memoized, and derived E-matching
  triggers are cached per quantifier atom.

Verdict identity: a seeded core is a theory-valid implication (the
theory solver proved its literals jointly unsatisfiable), so adding it
never changes satisfiability — ``PROVED`` and ``REFUTED`` outcomes are
exactly those of a cold prover.  Only budget-edge verdicts
(``GAVE_UP``/``TIMEOUT``) can shift, and those are never cached.  The
``--no-session`` escape hatch restores the cold path wholesale.

Sessions are single-threaded and cheap to build; share them across
obligations, not across processes.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro import obs
from repro.harness.watchdog import NO_RETRY, Deadline, RetryPolicy
from repro.prover import combine
from repro.prover.cnf import ClauseDb, assert_formula
from repro.prover.prover import ProofResult, Prover
from repro.prover.terms import Formula

#: Cap on retained conflict cores per session; beyond it new conflicts
#: are still learned *within* their obligation (the plain clause-learning
#: path) but no longer transferred.
MAX_CORES = 512

#: Cores larger than this are obligation-specific noise, not reusable
#: facts; skip them.
MAX_CORE_LITERALS = 16

#: Bound on the theory-consistency memo (entries, LRU).
MEMO_LIMIT = 4096

_Core = FrozenSet[Tuple[object, bool]]


class _SessionProver(Prover):
    """A :class:`Prover` whose extension hooks delegate to a session."""

    def __init__(
        self,
        session: "ProverSession",
        max_rounds: int,
        max_conflicts: int,
        time_limit: float,
    ):
        super().__init__(
            max_rounds=max_rounds,
            max_conflicts=max_conflicts,
            time_limit=time_limit,
        )
        self.axioms = session.axioms
        self.trigger_cache = session.trigger_cache
        self._session = session
        self._goal_serial = itertools.count()
        self._seeded: Set[int] = set()

    # -- hooks ----------------------------------------------------------

    def _base_db(self) -> ClauseDb:
        return self._session.base_db()

    def _assert(self, db: ClauseDb, f: Formula) -> None:
        assert_formula(db, f, namer=self._goal_namer)

    def _goal_namer(self, v: str) -> str:
        return f"@sg{next(self._goal_serial)}_{v}"

    def _begin_goal(self) -> None:
        # Canonical names restart for every goal so equal goals yield
        # equal atoms; the seeded set restarts because each goal gets a
        # fresh clone of the base db.
        self._goal_serial = itertools.count()
        self._seeded = set()

    def _theory_check(self, theory_lits, deadline: Deadline):
        return self._session.theory_check(theory_lits, deadline)

    def _note_conflict(self, conflict) -> None:
        index = self._session.learn_core(conflict)
        if index is not None:
            # The clause is already in the current db; don't re-seed it.
            self._seeded.add(index)

    def _seed_learned(self, db: ClauseDb) -> None:
        self._session.seed_cores(db, self._seeded)

    def _spawn(self, max_rounds, max_conflicts, time_limit) -> Prover:
        return _SessionProver(
            self._session, max_rounds, max_conflicts, time_limit
        )


class ProverSession:
    """Persistent solver state for one axiom environment.

    Construct with the axiom list (and the qualifier definition text as
    ``context``, mirroring the proof cache's environment key), then call
    :meth:`prove` / :meth:`prove_with_retry` per obligation exactly as
    on a plain :class:`Prover`.  :meth:`reset` drops all learned state;
    a :class:`SessionPool` calls it implicitly by handing out a fresh
    session whenever the environment digest changes.
    """

    def __init__(
        self,
        axioms,
        context: str = "",
        max_rounds: int = 6,
        max_conflicts: int = 4000,
        time_limit: float = 60.0,
        max_cores: int = MAX_CORES,
        memo_limit: int = MEMO_LIMIT,
        explain: bool = True,
    ):
        self.axioms: List[Formula] = list(axioms)
        self.context = context
        self.max_rounds = max_rounds
        self.max_conflicts = max_conflicts
        self.time_limit = time_limit
        self.max_cores = max_cores
        self.memo_limit = memo_limit
        self.explain = explain
        # The warm proof forest: one incremental theory state shared by
        # every obligation of this environment, so successive checks
        # retract/assert only the literals that differ (None in the
        # --no-explain ablation; the cold ddmin path runs instead).
        self.theory_state: Optional[combine.TheoryState] = (
            combine.TheoryState() if explain else None
        )
        self.env_digest = _environment_digest(self.axioms, context)
        self.trigger_cache: Dict[object, tuple] = {}
        self.counters: Dict[str, int] = {
            "proofs": 0,
            "session_reuse": 0,
            "cores_learned": 0,
            "cores_seeded": 0,
            "core_hits": 0,
            "theory_memo_hits": 0,
            "resets": 0,
        }
        self._base: Optional[ClauseDb] = None
        self._cores: List[_Core] = []
        self._core_set: Set[_Core] = set()
        self._memo: "OrderedDict[FrozenSet, Optional[tuple]]" = OrderedDict()

    # -- state shared with _SessionProver -------------------------------

    def base_db(self) -> ClauseDb:
        if self._base is None:
            db = ClauseDb()
            for ax in self.axioms:
                assert_formula(db, ax)
            self._base = db
        return self._base.clone()

    def theory_check(self, theory_lits, deadline: Deadline):
        key = frozenset(theory_lits)
        hit = self._memo.get(key, _MISS)
        if hit is not _MISS:
            self._memo.move_to_end(key)
            self.counters["theory_memo_hits"] += 1
            if obs.enabled():
                obs.incr("prover.session_memo_hits")
            return list(hit) if hit is not None else None
        # A learned core contained in this literal set is itself a
        # (minimal) conflicting subset, so it is a valid answer as-is —
        # skip the combination check and its ddmin minimization loop.
        for core in self._cores:
            if core <= key:
                self.counters["core_hits"] += 1
                if obs.enabled():
                    obs.incr("prover.session_core_hits")
                conflict = list(core)
                if len(self._memo) >= self.memo_limit:
                    self._memo.popitem(last=False)
                self._memo[key] = tuple(conflict)
                return conflict
        conflict = combine.check(
            theory_lits, deadline=deadline.at, state=self.theory_state
        )
        if len(self._memo) >= self.memo_limit:
            self._memo.popitem(last=False)
        self._memo[key] = tuple(conflict) if conflict is not None else None
        return conflict

    def learn_core(self, conflict) -> Optional[int]:
        """Retain a theory conflict for transfer; returns its index in
        the core store, or None when it was not retained."""
        core: _Core = frozenset(conflict)
        if len(core) > MAX_CORE_LITERALS or len(self._cores) >= self.max_cores:
            return None
        if core in self._core_set:
            return self._cores.index(core)
        self._core_set.add(core)
        self._cores.append(core)
        self.counters["cores_learned"] += 1
        return len(self._cores) - 1

    def seed_cores(self, db: ClauseDb, seeded: Set[int]) -> None:
        """Add every eligible learned core to ``db`` as a clause.

        A core is eligible only when all of its atoms already have SAT
        variables in ``db`` — seeding must not mint new atoms, or the
        ground-term pool (and with it the instantiation sequence and
        the REFUTED saturation argument) would drift from the cold run.
        """
        var_of_atom = db.var_of_atom
        for index, core in enumerate(self._cores):
            if index in seeded:
                continue
            lits = []
            for atom, polarity in core:
                var = var_of_atom.get(atom)
                if var is None:
                    break
                lits.append(-var if polarity else var)
            else:
                db.add_clause(lits)
                seeded.add(index)
                self.counters["cores_seeded"] += 1
                if obs.enabled():
                    obs.incr("prover.session_cores_seeded")

    # -- the Prover-compatible surface -----------------------------------

    def _prover(self, max_rounds, time_limit) -> _SessionProver:
        return _SessionProver(
            self,
            max_rounds=max_rounds if max_rounds is not None else self.max_rounds,
            max_conflicts=self.max_conflicts,
            time_limit=time_limit if time_limit is not None else self.time_limit,
        )

    def _count_proof(self) -> None:
        self.counters["proofs"] += 1
        if self.counters["proofs"] > 1:
            self.counters["session_reuse"] += 1
            if obs.enabled():
                obs.incr("prover.session_reuse")

    def prove(
        self,
        goal: Formula,
        extra_axioms=(),
        deadline: Optional[Deadline] = None,
        cache=None,
        cache_context: Optional[str] = None,
        max_rounds: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> ProofResult:
        self._count_proof()
        context = self.context if cache_context is None else cache_context
        return self._prover(max_rounds, time_limit).prove(
            goal, extra_axioms, deadline=deadline,
            cache=cache, cache_context=context,
        )

    def prove_with_retry(
        self,
        goal: Formula,
        extra_axioms=(),
        retry: RetryPolicy = NO_RETRY,
        deadline: Optional[Deadline] = None,
        cache=None,
        cache_context: Optional[str] = None,
        max_rounds: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> ProofResult:
        self._count_proof()
        context = self.context if cache_context is None else cache_context
        return self._prover(max_rounds, time_limit).prove_with_retry(
            goal, extra_axioms, retry=retry, deadline=deadline,
            cache=cache, cache_context=context,
        )

    def reset(self) -> None:
        """Drop all learned state (cores, memo, triggers, base db).

        Required whenever the axiom environment changes; a session must
        never be reused across environments without it."""
        self._base = None
        self._cores = []
        self._core_set = set()
        self._memo.clear()
        self.trigger_cache.clear()
        self.theory_state = combine.TheoryState() if self.explain else None
        self.counters["resets"] += 1

    def set_explain(self, explain: bool) -> None:
        """Switch conflict-core strategies; a flip discards the warm
        forest (the memo and cores stay — they are strategy-neutral)."""
        if explain == self.explain:
            return
        self.explain = explain
        self.theory_state = combine.TheoryState() if explain else None

    def rebind(self, axioms, context: str = "") -> None:
        """Point the session at a new axiom environment and reset."""
        self.axioms = list(axioms)
        self.context = context
        self.env_digest = _environment_digest(self.axioms, context)
        self.reset()


class SessionPool:
    """LRU pool of :class:`ProverSession`, keyed by environment digest.

    The pool is the "explicit reset on environment change": asking for
    an environment that is not resident creates a fresh session (and may
    evict the least recently used one), so learned state can never leak
    across environments.
    """

    def __init__(self, max_sessions: int = 8):
        self.max_sessions = max_sessions
        self.evictions = 0
        self._sessions: "OrderedDict[str, ProverSession]" = OrderedDict()

    def get(
        self,
        axioms,
        context: str = "",
        max_rounds: int = 6,
        max_conflicts: int = 4000,
        time_limit: float = 60.0,
        explain: bool = True,
    ) -> ProverSession:
        digest = _environment_digest(list(axioms), context)
        session = self._sessions.get(digest)
        if session is not None:
            self._sessions.move_to_end(digest)
            session.max_rounds = max_rounds
            session.max_conflicts = max_conflicts
            session.time_limit = time_limit
            session.set_explain(explain)
            return session
        session = ProverSession(
            axioms,
            context=context,
            max_rounds=max_rounds,
            max_conflicts=max_conflicts,
            time_limit=time_limit,
            explain=explain,
        )
        self._sessions[digest] = session
        while len(self._sessions) > self.max_sessions:
            self._sessions.popitem(last=False)
            self.evictions += 1
        return session

    def sessions(self) -> List[ProverSession]:
        return list(self._sessions.values())

    def counters(self) -> Dict[str, int]:
        """Aggregate counters across resident sessions."""
        totals: Dict[str, int] = {"sessions": len(self._sessions)}
        for session in self._sessions.values():
            for key, value in session.counters.items():
                totals[key] = totals.get(key, 0) + value
        for key in (
            "proofs", "session_reuse", "cores_learned",
            "cores_seeded", "core_hits", "theory_memo_hits",
        ):
            totals.setdefault(key, 0)
        totals.pop("resets", None)
        return totals


_MISS = object()


def _environment_digest(axioms, context: str) -> str:
    # Imported lazily: cache.fingerprint depends on prover.terms, and a
    # module-level import here would make the prover package depend on
    # the cache package at import time.
    from repro.cache import fingerprint

    return fingerprint.environment_key(axioms, context=context)
